//! The serving controller: a continuously running discrete-event loop that
//! dispatches arrivals across heterogeneous node groups and survives
//! mid-flight faults.
//!
//! # Event model
//!
//! One binary heap of `(virtual time, sequence)`-ordered events drives
//! everything: arrivals (pulled lazily from the [`ArrivalSource`]),
//! per-node completions (epoch-guarded so superseded schedules cancel
//! lazily), per-dispatch timeouts (dispatch-generation-guarded), retry
//! redispatches, fault injections (sampled one
//! [`ServeConfig::fault_window_s`] window at a time from the
//! [`FaultPlan`]), stall/straggler recoveries, node repairs, periodic
//! health sweeps and the control tick.
//!
//! # Robustness invariants
//!
//! - **Conservation**: every arrival ends exactly one way — completed,
//!   shed (admission or retry exhaustion), or in flight at a forced stop.
//! - **No deadlock**: pending work is re-flushed on every completion,
//!   repair, activation and control tick; a drain deadline bounds the
//!   post-arrival tail; an event-budget guard turns any scheduling bug
//!   into [`EnpropError::EventBudgetExceeded`] instead of a hang.
//! - **Determinism**: dispatch tie-breaks are by node index, all
//!   randomness is keyed ([`FaultPlan`] windows, arrival streams), and
//!   event ordering uses `total_cmp` plus a sequence number — the same
//!   inputs replay bit-identically on any host.
//!
//! # Correlated failures and emergencies (DESIGN.md §16)
//!
//! An optional [`TopologyFaultPlan`] layers *blast-radius* events on top
//! of the per-node plan: rack crashes, PDU losses (crash **and** zero
//! watts until repair), network partitions (correlated stalls) and
//! cluster-wide power emergencies. An emergency triggers the graceful
//! degradation ladder — DVFS brownout, then parking the wimpiest nodes,
//! then shedding by SLO class — one rung per control tick, every action
//! exported as a `ctl.emergency.*` event. Per-group circuit breakers
//! (Closed → Open → HalfOpen with a seeded-jitter probe) stop the
//! dispatcher from hammering a failing group, and the pending queue is
//! bounded (`max_pending`) with overflow shed as backpressure.
//!
//! # Checkpoint / resume
//!
//! [`Controller::run_full`] can invoke a checkpoint hook with a
//! crash-consistent serialized snapshot at every closed obs window, and
//! [`Controller::resume_full`] restores one and continues the event loop
//! — event-for-event and joule-for-joule identical to the uninterrupted
//! run (property-tested in `tests/resume_props.rs`).

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use enprop_clustersim::ClusterSpec;
use enprop_faults::{
    Domain, DomainEvent, DomainFaultKind, EnpropError, FaultKind, FaultPlan, FaultRng,
    TopologyFaultPlan,
};
use enprop_obs::{EnergyOutcome, QuantileSketch, Recorder, Track};
use enprop_workloads::{SingleNodeModel, Workload};

use crate::arrivals::ArrivalSource;
use crate::config::ServeConfig;
use crate::plane::{ObsPlane, WindowReport};
use crate::report::ServeReport;

/// Controller-visible node admission state (the reconfiguration state
/// machine of DESIGN.md §13; the *actual* crash/stall/straggler overlay is
/// tracked separately and only becomes visible through timeouts and health
/// checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admin {
    /// Accepting dispatches.
    Active,
    /// Finishing its backlog, accepting nothing new; parks when empty.
    Draining,
    /// Powered off by the controller (0 W).
    Deactivated,
    /// Detected dead; queue re-routed, repair scheduled.
    Down,
}

/// Where a request currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// Waiting at the dispatcher (no eligible node yet).
    Pending,
    /// Waiting out a retry backoff.
    Backoff,
    /// Queued or executing on a node.
    OnNode(usize),
}

#[derive(Debug, Clone)]
pub(crate) struct Req {
    pub(crate) arrived: f64,
    pub(crate) ops: f64,
    /// SLO class (0 = latency-critical; the emergency ladder sheds high
    /// classes first).
    pub(crate) class: u8,
    /// Budget-consuming retries so far.
    pub(crate) attempt: u32,
    /// Placement generation: bumped on every (re-)placement so stale
    /// timeout events cancel lazily.
    pub(crate) dispatch: u32,
    pub(crate) loc: Loc,
    /// Node to avoid on the next dispatch (the one that just timed out).
    pub(crate) exclude: Option<usize>,
    pub(crate) traced: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Running {
    pub(crate) req: u64,
    pub(crate) remaining_ops: f64,
    /// Busy joules integrated into this request so far — attributed to
    /// its outcome (completed/retried/shed) when its fate resolves.
    pub(crate) energy_j: f64,
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) group: usize,
    pub(crate) in_group: u16,
    pub(crate) admin: Admin,
    /// Fail-stop crash not yet detected/repaired.
    pub(crate) crashed: bool,
    /// PDU loss: the node draws zero watts until repaired (a crashed but
    /// powered node keeps burning idle watts; an unpowered one is dark).
    pub(crate) unpowered: bool,
    pub(crate) stalled_until: f64,
    pub(crate) slowdown: f64,
    pub(crate) slow_until: f64,
    pub(crate) queue: VecDeque<u64>,
    pub(crate) queued_ops: f64,
    pub(crate) current: Option<Running>,
    /// Completion-schedule epoch (lazy cancellation).
    pub(crate) epoch: u64,
    /// Accounting frontier: energy/progress integrated up to here.
    pub(crate) acct_t: f64,
    pub(crate) energy_j: f64,
    /// Joules accrued since the last plane flush (busy / ideal / idle) —
    /// the hot `advance` path adds to these plain fields and the plane
    /// sees them batched per window roll, not per advance.
    pub(crate) win_busy_j: f64,
    pub(crate) win_ideal_j: f64,
    pub(crate) win_idle_j: f64,
    /// An un-closed `node.down` span is open on this node's track.
    pub(crate) down_span_open: bool,
}

/// A per-group circuit breaker (DESIGN.md §16). Consecutive dispatch
/// timeouts open it; an open breaker blocks dispatch to the whole group
/// until a seeded-jitter hold expires, then a single half-open probe
/// decides between closing and re-opening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Breaker {
    /// Dispatching normally; counts consecutive timeouts.
    Closed {
        /// Consecutive timeouts since the last success.
        fails: u32,
    },
    /// No dispatches until `until_s` (jittered by a seeded stream keyed
    /// on the reopen count so repeat offenders don't probe in lockstep).
    Open {
        /// Virtual time the hold expires.
        until_s: f64,
        /// How many times this breaker has re-opened.
        reopens: u32,
    },
    /// Admits exactly one probe request; its fate decides the next state.
    HalfOpen {
        /// The in-flight probe's request id, if one was dispatched.
        probe: Option<u64>,
        /// Reopen count carried for the next jitter draw.
        reopens: u32,
    },
}

/// Per-group rate/power tables at every DVFS level, plus the group's
/// current level (DVFS decisions step whole groups, matching the paper's
/// per-type operating tuples).
#[derive(Debug)]
pub(crate) struct GroupModel {
    pub(crate) rate_at: Vec<f64>,
    pub(crate) busy_w_at: Vec<f64>,
    pub(crate) idle_w: f64,
    pub(crate) freq_idx: usize,
    /// Peak busy power across DVFS levels — the ideal-proportionality
    /// reference of the EP index (DESIGN.md §14).
    pub(crate) peak_busy_w: f64,
    pub(crate) breaker: Breaker,
}

#[derive(Debug, Clone)]
pub(crate) enum EvKind {
    Arrival { ops: f64, class: u8 },
    Completion { node: usize, epoch: u64 },
    Timeout { req: u64, dispatch: u32 },
    Redispatch { req: u64 },
    Fault { node: usize, kind: FaultKind },
    FaultWindow { node: usize, window: u32 },
    StallEnd { node: usize },
    StragglerEnd { node: usize },
    Repair { node: usize },
    HealthCheck,
    ControlTick,
    DrainDeadline,
    /// Materialize the next window of correlated domain faults.
    DomainWindow { window: u32 },
    /// A correlated fault fires (rack crash, PDU loss, partition,
    /// power emergency).
    DomainFault { event: DomainEvent },
    /// A power emergency's hold expires.
    EmergencyEnd,
}

#[derive(Debug, Clone)]
pub(crate) struct Ev {
    pub(crate) t: f64,
    pub(crate) seq: u64,
    pub(crate) kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        self.t.total_cmp(&other.t).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Fraction of the SLO below which the controller considers scaling down,
/// and the headroom margin capacity must keep over measured demand.
const SCALE_DOWN_P95_FRACTION: f64 = 0.3;
const CAPACITY_MARGIN: f64 = 1.3;
/// Shed mode exits when the window p95 recovers below this SLO fraction.
const SHED_EXIT_P95_FRACTION: f64 = 0.8;

/// Side hooks of a [`Controller::run_full`] invocation: the live-report
/// callback, the checkpoint sink, and the simulated-crash switch.
pub struct RunHooks<'h> {
    /// Invoked with every closed [`WindowReport`] (`--live-report`).
    pub live: &'h mut dyn FnMut(&WindowReport),
    /// Invoked with the serialized crash-consistent snapshot at every
    /// closed obs window (`--checkpoint-out`). Requires the obs plane
    /// (`obs_window_s > 0`) — with the plane off no window ever closes
    /// and the hook never fires.
    pub checkpoint: Option<&'h mut dyn FnMut(&str)>,
    /// Abandon the run (as a crash would) after this many processed
    /// events — the chaos harness's kill switch.
    pub kill_after_events: Option<u64>,
}

/// How a [`Controller::run_full`] run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Ran to completion (clean drain or drain-deadline force stop).
    /// Boxed: the report is ~40 fields wide and the variant would dwarf
    /// [`RunOutcome::Killed`] on the stack otherwise.
    Completed(Box<ServeReport>),
    /// Killed by [`RunHooks::kill_after_events`] — no report; the run
    /// "crashed" and its last checkpoint is the resume point.
    Killed {
        /// Events processed when the kill fired.
        events: u64,
        /// Virtual time of the kill.
        at_s: f64,
    },
}

/// The online serving controller. Construct-and-run via
/// [`Controller::run`]; all state is internal to one run.
#[derive(Debug)]
pub struct Controller<'a> {
    pub(crate) cfg: &'a ServeConfig,
    plan: &'a FaultPlan,
    topo: Option<&'a TopologyFaultPlan>,
    pub(crate) groups: Vec<GroupModel>,
    pub(crate) nodes: Vec<Node>,

    pub(crate) heap: BinaryHeap<Reverse<Ev>>,
    pub(crate) seq: u64,
    pub(crate) now: f64,
    pub(crate) events: u64,

    pub(crate) inflight: BTreeMap<u64, Req>,
    pub(crate) pending: VecDeque<u64>,
    pub(crate) next_req_id: u64,
    pub(crate) arrivals_done: bool,
    pub(crate) drain_armed: bool,

    pub(crate) shed_mode: bool,
    pub(crate) shed_entries: u64,
    pub(crate) cooldown: u32,

    // Per-tick measurement window (bounded-memory sketch, reset per tick).
    pub(crate) tick_sketch: QuantileSketch,
    pub(crate) window_arrival_ops: f64,

    // Run-level accounting (bounded-memory sketch; `exact_quantile` stays
    // as the test oracle, never as run state).
    pub(crate) run_sketch: QuantileSketch,
    pub(crate) resp_sum: f64,

    /// The windowed observability plane (`None` when `obs_window_s == 0`).
    pub(crate) plane: Option<ObsPlane>,
    /// Cached [`ObsPlane::next_close_s`] (`f64::INFINITY` with the plane
    /// off): the per-event roll guard is one float compare instead of an
    /// `Option` probe into the plane struct.
    pub(crate) plane_next_close_s: f64,

    /// Temporary cluster cap while a power emergency holds
    /// (`f64::INFINITY` = none).
    pub(crate) emergency_cap_w: f64,
    /// When the current emergency expires (`f64::NEG_INFINITY` = none).
    pub(crate) emergency_until_s: f64,
    /// Next degradation-ladder rung to try (0 = brownout).
    pub(crate) emergency_level: u32,
    /// Arrivals with `class >= floor` are shed (ladder rungs 2–3 lower
    /// it; `u8::MAX` = shed nothing by class).
    pub(crate) shed_class_floor: u8,

    pub(crate) arrivals: u64,
    pub(crate) completions: u64,
    pub(crate) shed_admission: u64,
    pub(crate) shed_retry: u64,
    pub(crate) shed_backpressure: u64,
    pub(crate) timeouts: u64,
    pub(crate) retries: u64,
    pub(crate) reroutes: u64,
    pub(crate) crashes: u64,
    pub(crate) stalls: u64,
    pub(crate) stragglers: u64,
    pub(crate) repairs: u64,
    pub(crate) activations: u64,
    pub(crate) deactivations: u64,
    pub(crate) dvfs_up: u64,
    pub(crate) dvfs_down: u64,
    pub(crate) shed_toggles: u64,
    pub(crate) rack_crashes: u64,
    pub(crate) pdu_losses: u64,
    pub(crate) partitions: u64,
    pub(crate) power_emergencies: u64,
    pub(crate) emergency_actions: u64,
    pub(crate) breaker_opens: u64,
    pub(crate) breaker_closes: u64,
}

impl<'a> Controller<'a> {
    /// Serve `source` to exhaustion on `cluster` under `plan`, exporting
    /// telemetry to `rec`. Returns the run's [`ServeReport`];
    /// deterministic in `(workload, cluster, plan, cfg, source)`.
    pub fn run<R: Recorder>(
        workload: &Workload,
        cluster: &ClusterSpec,
        plan: &'a FaultPlan,
        cfg: &'a ServeConfig,
        source: &mut ArrivalSource,
        rec: &mut R,
    ) -> Result<ServeReport, EnpropError> {
        Controller::run_live(workload, cluster, plan, cfg, source, rec, &mut |_| {})
    }

    /// [`Controller::run`], additionally invoking `live` with every
    /// closed [`WindowReport`] as the plane tumbles — the `--live-report`
    /// hook. `live` never fires when `obs_window_s == 0`.
    pub fn run_live<R: Recorder>(
        workload: &Workload,
        cluster: &ClusterSpec,
        plan: &'a FaultPlan,
        cfg: &'a ServeConfig,
        source: &mut ArrivalSource,
        rec: &mut R,
        live: &mut dyn FnMut(&WindowReport),
    ) -> Result<ServeReport, EnpropError> {
        let mut hooks = RunHooks { live, checkpoint: None, kill_after_events: None };
        match Controller::run_full(workload, cluster, plan, None, cfg, source, rec, &mut hooks)? {
            RunOutcome::Completed(r) => Ok(*r),
            // Unreachable: no kill hook was installed.
            RunOutcome::Killed { events, at_s } => Err(EnpropError::invalid_config(format!(
                "run killed at event {events} (t={at_s}) without a kill hook"
            ))),
        }
    }

    /// The full-surface entry point: correlated domain faults (`topo`),
    /// checkpointing and the kill switch, on top of everything
    /// [`Controller::run_live`] does.
    #[allow(clippy::too_many_arguments)]
    pub fn run_full<R: Recorder>(
        workload: &Workload,
        cluster: &ClusterSpec,
        plan: &'a FaultPlan,
        topo: Option<&'a TopologyFaultPlan>,
        cfg: &'a ServeConfig,
        source: &mut ArrivalSource,
        rec: &mut R,
        hooks: &mut RunHooks<'_>,
    ) -> Result<RunOutcome, EnpropError> {
        cfg.validate()?;
        plan.validate()?;
        let mut c = Controller::new(workload, cluster, plan, topo, cfg)?;
        c.bootstrap(source, rec);
        c.event_loop(source, rec, hooks)
    }

    /// Restore `snapshot` (produced by the checkpoint hook) onto a fresh
    /// controller built from the *same* workload / cluster / plans /
    /// config, seek `source` to the snapshotted cursor, and continue the
    /// event loop. The continuation is event-for-event and
    /// joule-for-joule identical to the uninterrupted run; any
    /// disagreement between the snapshot and the provided inputs is a
    /// typed configuration error (exit 2), never a silent divergence.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_full<R: Recorder>(
        workload: &Workload,
        cluster: &ClusterSpec,
        plan: &'a FaultPlan,
        topo: Option<&'a TopologyFaultPlan>,
        cfg: &'a ServeConfig,
        source: &mut ArrivalSource,
        rec: &mut R,
        snapshot: &str,
        hooks: &mut RunHooks<'_>,
    ) -> Result<RunOutcome, EnpropError> {
        cfg.validate()?;
        plan.validate()?;
        let mut c = Controller::new(workload, cluster, plan, topo, cfg)?;
        let restored = crate::snapshot::restore(&mut c, snapshot)?;
        source.restore(&restored.source)?;
        // Counter names are `'static` literals at emission time but arrive
        // from the snapshot as parsed text, so intern each one. Bounded:
        // a few short strings, once per resume.
        for (name, total) in restored.counters {
            rec.counter_restore(Box::leak(name.into_boxed_str()), total);
        }
        c.event_loop(source, rec, hooks)
    }

    fn new(
        workload: &Workload,
        cluster: &ClusterSpec,
        plan: &'a FaultPlan,
        topo: Option<&'a TopologyFaultPlan>,
        cfg: &'a ServeConfig,
    ) -> Result<Self, EnpropError> {
        let mut groups = Vec::with_capacity(cluster.groups.len());
        let mut nodes = Vec::new();
        for (gi, g) in cluster.groups.iter().enumerate() {
            let profile = workload.try_profile(g.spec.name)?;
            let model = SingleNodeModel::new(&profile.spec, &profile.demand, workload.io_rate);
            let mut rate_at = Vec::with_capacity(g.spec.frequencies.len());
            let mut busy_w_at = Vec::with_capacity(g.spec.frequencies.len());
            for &f in &g.spec.frequencies {
                let r = model.throughput(g.cores, f);
                if !r.is_finite() || r <= 0.0 {
                    return Err(EnpropError::invalid_config(format!(
                        "workload {} has unusable throughput {r} on {} at {f} Hz",
                        workload.name, g.spec.name
                    )));
                }
                rate_at.push(r);
                busy_w_at.push(model.busy_power(g.cores, f));
            }
            // The spec'd operating frequency selects the starting DVFS level.
            let freq_idx = g
                .spec
                .frequencies
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (*a - g.freq).abs().total_cmp(&(*b - g.freq).abs())
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            if u16::try_from(gi).is_err() {
                return Err(EnpropError::invalid_config(
                    "more than 65535 node groups".to_string(),
                ));
            }
            for ni in 0..g.count {
                let in_group = u16::try_from(ni).map_err(|_| {
                    EnpropError::invalid_config("more than 65535 nodes in a group".to_string())
                })?;
                nodes.push(Node {
                    group: gi,
                    in_group,
                    admin: Admin::Active,
                    crashed: false,
                    unpowered: false,
                    stalled_until: f64::NEG_INFINITY,
                    slowdown: 1.0,
                    slow_until: f64::NEG_INFINITY,
                    queue: VecDeque::new(),
                    queued_ops: 0.0,
                    current: None,
                    epoch: 0,
                    acct_t: 0.0,
                    energy_j: 0.0,
                    win_busy_j: 0.0,
                    win_ideal_j: 0.0,
                    win_idle_j: 0.0,
                    down_span_open: false,
                });
            }
            let peak_busy_w = busy_w_at.iter().copied().fold(0.0_f64, f64::max);
            groups.push(GroupModel {
                rate_at,
                busy_w_at,
                idle_w: g.spec.power.sys_idle_w,
                freq_idx,
                peak_busy_w,
                breaker: Breaker::Closed { fails: 0 },
            });
        }
        if nodes.is_empty() {
            return Err(EnpropError::EmptyCluster {
                workload: workload.name.to_string(),
            });
        }
        if let Some(t) = topo {
            t.validate()?;
            if t.topology.nodes != nodes.len() {
                return Err(EnpropError::invalid_config(format!(
                    "topology covers {} nodes but the cluster has {}",
                    t.topology.nodes,
                    nodes.len()
                )));
            }
        }
        let n_groups = groups.len();
        Ok(Controller {
            cfg,
            plan,
            topo,
            groups,
            nodes,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            events: 0,
            inflight: BTreeMap::new(),
            pending: VecDeque::new(),
            next_req_id: 0,
            arrivals_done: false,
            drain_armed: false,
            shed_mode: false,
            shed_entries: 0,
            cooldown: 0,
            tick_sketch: QuantileSketch::new(cfg.obs_alpha),
            window_arrival_ops: 0.0,
            run_sketch: QuantileSketch::new(cfg.obs_alpha),
            resp_sum: 0.0,
            plane: (cfg.obs_window_s > 0.0).then(|| {
                ObsPlane::new(
                    cfg.obs_window_s,
                    cfg.obs_alpha,
                    cfg.obs_max_windows,
                    n_groups,
                    cfg.slo_p95_s,
                    cfg.burn_fast_windows,
                    cfg.burn_slow_windows,
                    cfg.burn_threshold,
                    cfg.burn_exit,
                )
            }),
            plane_next_close_s: if cfg.obs_window_s > 0.0 {
                cfg.obs_window_s
            } else {
                f64::INFINITY
            },
            emergency_cap_w: f64::INFINITY,
            emergency_until_s: f64::NEG_INFINITY,
            emergency_level: 0,
            shed_class_floor: u8::MAX,
            arrivals: 0,
            completions: 0,
            shed_admission: 0,
            shed_retry: 0,
            shed_backpressure: 0,
            timeouts: 0,
            retries: 0,
            reroutes: 0,
            crashes: 0,
            stalls: 0,
            stragglers: 0,
            repairs: 0,
            activations: 0,
            deactivations: 0,
            dvfs_up: 0,
            dvfs_down: 0,
            shed_toggles: 0,
            rack_crashes: 0,
            pdu_losses: 0,
            partitions: 0,
            power_emergencies: 0,
            emergency_actions: 0,
            breaker_opens: 0,
            breaker_closes: 0,
        })
    }

    fn push(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { t, seq, kind }));
    }

    fn node_track(&self, i: usize) -> Track {
        let n = &self.nodes[i];
        Track::Node {
            group: u16::try_from(n.group).unwrap_or(u16::MAX),
            node: n.in_group,
        }
    }

    /// Pull the next arrival from the source and schedule it; arms the
    /// drain deadline once the stream is exhausted.
    fn schedule_next_arrival(&mut self, source: &mut ArrivalSource) {
        match source.next_arrival() {
            Some(a) => {
                let t = if a.t_s > self.now { a.t_s } else { self.now };
                self.push(t, EvKind::Arrival { ops: a.ops, class: a.class });
            }
            None => {
                self.arrivals_done = true;
                if !self.drain_armed {
                    self.drain_armed = true;
                    self.push(self.now + self.cfg.drain_timeout_s, EvKind::DrainDeadline);
                }
            }
        }
    }

    fn bootstrap<R: Recorder>(&mut self, source: &mut ArrivalSource, rec: &mut R) {
        rec.span_begin(0.0, Track::Controller, "serve.run", self.cfg.seed);
        self.schedule_next_arrival(source);
        self.push(self.cfg.tick_s, EvKind::ControlTick);
        self.push(self.cfg.health_interval_s, EvKind::HealthCheck);
        for i in 0..self.nodes.len() {
            self.push(0.0, EvKind::FaultWindow { node: i, window: 0 });
        }
        if self.topo.is_some_and(|t| !t.is_inert()) {
            self.push(0.0, EvKind::DomainWindow { window: 0 });
        }
    }

    /// Livelock guard: generous, scales with work actually admitted so a
    /// 10^6-request replay is fine while a same-instant event loop trips.
    fn event_budget(&self) -> u64 {
        if self.cfg.max_events > 0 {
            return self.cfg.max_events;
        }
        let cadence = self.cfg.tick_s.min(self.cfg.health_interval_s);
        let recurring = (self.now / cadence) as u64 + 1;
        let windows = (self.now / self.cfg.fault_window_s) as u64 + 1;
        let per_node = (self.nodes.len() as u64) * windows * 80;
        100_000 + 300 * self.arrivals + 8 * recurring + per_node
    }

    fn done(&self) -> bool {
        self.arrivals_done && self.inflight.is_empty()
    }

    fn event_loop<R: Recorder>(
        &mut self,
        source: &mut ArrivalSource,
        rec: &mut R,
        hooks: &mut RunHooks<'_>,
    ) -> Result<RunOutcome, EnpropError> {
        let mut forced = false;
        while !self.done() {
            let Some(Reverse(ev)) = self.heap.pop() else {
                // Unreachable by construction (recurring ticks always
                // exist while work is outstanding); treated as a forced
                // stop rather than a panic.
                forced = true;
                break;
            };
            debug_assert!(ev.t >= self.now, "time went backwards");
            self.now = ev.t;
            let closing = self.now >= self.plane_next_close_s;
            self.roll_plane(rec, &mut *hooks.live);
            // Snapshot at window boundaries, after the roll: the plane
            // has already tumbled, so a resumed run never re-closes the
            // window; the just-popped event is serialized back into the
            // heap section and is the first thing the resume processes.
            if closing {
                if let Some(cp) = hooks.checkpoint.as_mut() {
                    let snap = crate::snapshot::serialize(
                        self,
                        &ev,
                        &source.state(),
                        &rec.counter_snapshot(),
                    );
                    cp(&snap);
                }
            }
            self.events += 1;
            if self.events > self.event_budget() {
                return Err(EnpropError::EventBudgetExceeded {
                    events: self.events,
                    at_s: self.now,
                });
            }
            match ev.kind {
                EvKind::Arrival { ops, class } => self.on_arrival(ops, class, source, rec),
                EvKind::Completion { node, epoch } => self.on_completion(node, epoch, rec),
                EvKind::Timeout { req, dispatch } => self.on_timeout(req, dispatch, rec),
                EvKind::Redispatch { req } => self.on_redispatch(req, rec),
                EvKind::Fault { node, kind } => self.on_fault(node, kind, rec),
                EvKind::FaultWindow { node, window } => self.on_fault_window(node, window),
                EvKind::StallEnd { node } => self.on_stall_end(node),
                EvKind::StragglerEnd { node } => self.on_straggler_end(node),
                EvKind::Repair { node } => self.on_repair(node, rec),
                EvKind::HealthCheck => self.on_health_check(rec),
                EvKind::ControlTick => self.on_control_tick(rec),
                EvKind::DrainDeadline => {
                    if !self.done() {
                        forced = true;
                    }
                    break;
                }
                EvKind::DomainWindow { window } => self.on_domain_window(window),
                EvKind::DomainFault { event } => self.on_domain_fault(event, rec),
                EvKind::EmergencyEnd => self.on_emergency_end(rec),
            }
            if hooks.kill_after_events.is_some_and(|k| self.events >= k) {
                // A simulated crash: walk away mid-flight. No finish(),
                // no report — exactly what a real kill leaves behind.
                return Ok(RunOutcome::Killed { events: self.events, at_s: self.now });
            }
        }
        Ok(RunOutcome::Completed(Box::new(self.finish(
            forced,
            rec,
            &mut *hooks.live,
        ))))
    }

    /// Close every plane window that ended at or before `self.now`. All
    /// nodes are advanced first so their energy deposits land before the
    /// window emits (per-window power is accurate to one inter-event gap).
    fn roll_plane<R: Recorder>(&mut self, rec: &mut R, live: &mut dyn FnMut(&WindowReport)) {
        if self.now < self.plane_next_close_s {
            return;
        }
        for i in 0..self.nodes.len() {
            self.advance(i);
        }
        self.flush_window_energy();
        if let Some(p) = &mut self.plane {
            p.roll_to(self.now, rec, live);
            self.plane_next_close_s = p.next_close_s();
        }
    }

    /// Drain every node's since-last-flush energy accumulators into the
    /// plane's current window. Called with all nodes advanced to `now`,
    /// immediately before windows close (and at shutdown).
    fn flush_window_energy(&mut self) {
        let Some(p) = &mut self.plane else { return };
        for n in &mut self.nodes {
            let group = u16::try_from(n.group).unwrap_or(u16::MAX);
            if n.win_busy_j > 0.0 {
                p.busy_energy(group, n.win_busy_j, n.win_ideal_j);
                n.win_busy_j = 0.0;
                n.win_ideal_j = 0.0;
            }
            if n.win_idle_j > 0.0 {
                p.idle_energy(group, n.win_idle_j);
                n.win_idle_j = 0.0;
            }
        }
    }

    // ---- node accounting -------------------------------------------------

    /// Integrate energy and work progress for node `i` up to `self.now`.
    /// Every state mutation calls this first, so each integration interval
    /// has constant state.
    fn advance(&mut self, i: usize) {
        let now = self.now;
        let n = &mut self.nodes[i];
        let dt_s = now - n.acct_t;
        if dt_s <= 0.0 {
            n.acct_t = now;
            return;
        }
        let g = &self.groups[n.group];
        let stalled = n.acct_t < n.stalled_until;
        let busy = n.current.is_some() && !n.crashed && !stalled;
        let power_w = if n.unpowered {
            0.0 // PDU loss: dark until repaired
        } else {
            match n.admin {
                Admin::Deactivated => 0.0,
                _ => {
                    if busy {
                        g.busy_w_at[g.freq_idx]
                    } else {
                        g.idle_w
                    }
                }
            }
        };
        let joules = dt_s * power_w;
        let ideal_joules = if busy { dt_s * g.peak_busy_w } else { 0.0 };
        n.energy_j += joules;
        if busy {
            let rate = g.rate_at[g.freq_idx] / n.slowdown;
            if let Some(cur) = &mut n.current {
                cur.remaining_ops = (cur.remaining_ops - dt_s * rate).max(0.0);
                cur.energy_j += joules;
            }
        }
        n.acct_t = now;
        if joules > 0.0 && self.plane.is_some() {
            if busy {
                n.win_busy_j += joules;
                n.win_ideal_j += ideal_joules;
            } else {
                n.win_idle_j += joules;
            }
        }
    }

    /// (Re-)schedule node `i`'s completion from its current state; bumps
    /// the epoch so any previously scheduled completion cancels.
    fn reschedule_completion(&mut self, i: usize) {
        self.nodes[i].epoch += 1;
        let n = &self.nodes[i];
        if n.crashed {
            return;
        }
        let Some(cur) = &n.current else { return };
        let g = &self.groups[n.group];
        let rate = g.rate_at[g.freq_idx] / n.slowdown;
        let start = if n.stalled_until > self.now { n.stalled_until } else { self.now };
        let t = start + cur.remaining_ops / rate;
        let epoch = n.epoch;
        self.push(t, EvKind::Completion { node: i, epoch });
    }

    /// Start the next queued request on an idle node.
    fn start_next(&mut self, i: usize) {
        self.advance(i);
        let n = &mut self.nodes[i];
        if n.current.is_some() {
            return;
        }
        let Some(req) = n.queue.pop_front() else { return };
        let ops = self.inflight.get(&req).map_or(0.0, |r| r.ops);
        let n = &mut self.nodes[i];
        n.queued_ops = (n.queued_ops - ops).max(0.0);
        n.current = Some(Running {
            req,
            remaining_ops: ops,
            energy_j: 0.0,
        });
        self.reschedule_completion(i);
    }

    /// Instantaneous cluster power, watts.
    fn power_now(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| {
                let g = &self.groups[n.group];
                match n.admin {
                    _ if n.unpowered => 0.0,
                    Admin::Deactivated => 0.0,
                    _ => {
                        let stalled = self.now < n.stalled_until;
                        if n.current.is_some() && !n.crashed && !stalled {
                            g.busy_w_at[g.freq_idx]
                        } else {
                            g.idle_w
                        }
                    }
                }
            })
            .sum()
    }

    /// Believed serving capacity, ops/s (Active nodes at their DVFS level;
    /// undetected crashes still count — the controller cannot see them).
    fn believed_capacity(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.admin == Admin::Active)
            .map(|n| {
                let g = &self.groups[n.group];
                g.rate_at[g.freq_idx]
            })
            .sum()
    }

    fn admitted_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.admin, Admin::Active | Admin::Draining))
            .count()
    }

    // ---- request path ----------------------------------------------------

    fn on_arrival<R: Recorder>(
        &mut self,
        ops: f64,
        class: u8,
        source: &mut ArrivalSource,
        rec: &mut R,
    ) {
        self.arrivals += 1;
        self.window_arrival_ops += ops;
        rec.tally("serve.arrivals", 1);
        if let Some(p) = &mut self.plane {
            p.on_arrival();
        }
        let id = self.next_req_id;
        self.next_req_id += 1;
        // Admission control: shed mode, the emergency ladder's class
        // floor, and the in-flight cap all shed here.
        if self.shed_mode || class >= self.shed_class_floor
            || self.inflight.len() >= self.cfg.max_inflight
        {
            self.shed_admission += 1;
            rec.tally("serve.shed", 1);
            if let Some(p) = &mut self.plane {
                p.on_shed();
            }
        } else {
            let traced = id < self.cfg.traced_requests;
            if traced {
                rec.span_begin(self.now, Track::Dispatcher, "request", id);
            }
            self.inflight.insert(
                id,
                Req {
                    arrived: self.now,
                    ops,
                    class,
                    attempt: 0,
                    dispatch: 0,
                    loc: Loc::Pending,
                    exclude: None,
                    traced,
                },
            );
            if !self.dispatch(id) {
                // Bounded-queue backpressure: an admitted request that
                // cannot be placed and finds the pending queue full is
                // shed instead of growing the queue without bound.
                if self.pending.len() >= self.cfg.max_pending {
                    self.shed_backpressure += 1;
                    rec.tally("serve.shed", 1);
                    if let Some(p) = &mut self.plane {
                        p.on_shed();
                    }
                    if traced {
                        rec.span_end(self.now, Track::Dispatcher, "request", id);
                    }
                    self.inflight.remove(&id);
                } else {
                    self.pending.push_back(id);
                }
            }
        }
        self.schedule_next_arrival(source);
    }

    /// Place `req` on the best Active node (least expected wait, ties by
    /// node index). Falls back to the excluded node when it is the only
    /// choice. Returns false (and marks the request Pending) when no
    /// Active node exists.
    fn dispatch(&mut self, req: u64) -> bool {
        let Some(r) = self.inflight.get(&req) else { return true };
        let ops = r.ops;
        let exclude = r.exclude;
        let mut best: Option<(f64, usize)> = None;
        let mut best_excluded: Option<(f64, usize)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.admin != Admin::Active {
                continue;
            }
            let g = &self.groups[n.group];
            // Circuit breaker: an Open group takes nothing; a HalfOpen
            // group takes exactly one probe at a time.
            if self.cfg.breaker_failures > 0 {
                match g.breaker {
                    Breaker::Open { .. } | Breaker::HalfOpen { probe: Some(_), .. } => continue,
                    _ => {}
                }
            }
            let rate = g.rate_at[g.freq_idx];
            let backlog =
                n.queued_ops + n.current.as_ref().map_or(0.0, |c| c.remaining_ops) + ops;
            let score = backlog / rate;
            let slot = if Some(i) == exclude { &mut best_excluded } else { &mut best };
            let better = match *slot {
                Some((best_score, _)) => score < best_score,
                None => true,
            };
            if better {
                *slot = Some((score, i));
            }
        }
        let Some((expected, i)) = best.or(best_excluded) else {
            if let Some(r) = self.inflight.get_mut(&req) {
                r.loc = Loc::Pending;
            }
            return false;
        };
        let dispatch_gen = {
            let Some(r) = self.inflight.get_mut(&req) else { return true };
            r.loc = Loc::OnNode(i);
            r.exclude = None;
            r.dispatch += 1;
            r.dispatch
        };
        // Dispatching into a HalfOpen group makes this request its probe.
        let gi = self.nodes[i].group;
        if let Breaker::HalfOpen { probe: None, reopens } = self.groups[gi].breaker {
            self.groups[gi].breaker = Breaker::HalfOpen { probe: Some(req), reopens };
        }
        let n = &mut self.nodes[i];
        n.queue.push_back(req);
        n.queued_ops += ops;
        let timeout = self.cfg.retry.timeout_factor * expected;
        if timeout.is_finite() {
            self.push(
                self.now + timeout,
                EvKind::Timeout {
                    req,
                    dispatch: dispatch_gen,
                },
            );
        }
        if self.nodes[i].current.is_none() {
            self.start_next(i);
        }
        true
    }

    /// Try to place every pending request (called whenever capacity may
    /// have appeared: completions, repairs, activations, control ticks).
    fn flush_pending(&mut self) {
        let mut tries = self.pending.len();
        while tries > 0 {
            tries -= 1;
            let Some(req) = self.pending.pop_front() else { break };
            let live = matches!(
                self.inflight.get(&req),
                Some(Req { loc: Loc::Pending, .. })
            );
            if !live {
                continue;
            }
            if !self.dispatch(req) {
                self.pending.push_back(req);
            }
        }
    }

    fn on_completion<R: Recorder>(&mut self, i: usize, epoch: u64, rec: &mut R) {
        if self.nodes[i].epoch != epoch {
            return; // superseded schedule
        }
        self.advance(i);
        let Some(cur) = self.nodes[i].current.take() else { return };
        self.nodes[i].epoch += 1;
        if let Some(r) = self.inflight.remove(&cur.req) {
            let resp = self.now - r.arrived;
            self.completions += 1;
            self.resp_sum += resp;
            let key = self.run_sketch.key_for(resp);
            self.tick_sketch.observe_keyed(resp, key);
            self.run_sketch.observe_keyed(resp, key);
            rec.tally("serve.completions", 1);
            rec.observe("serve.response_s", resp);
            let group = u16::try_from(self.nodes[i].group).unwrap_or(u16::MAX);
            if let Some(p) = &mut self.plane {
                p.on_completion(resp, group, key, cur.energy_j);
            }
            if r.traced {
                rec.span_end(self.now, Track::Dispatcher, "request", cur.req);
            }
            self.breaker_on_success(self.nodes[i].group, cur.req, rec);
        }
        if self.nodes[i].queue.is_empty() && self.nodes[i].admin == Admin::Draining {
            self.park(i, rec);
        } else {
            self.start_next(i);
        }
        self.flush_pending();
    }

    fn on_timeout<R: Recorder>(&mut self, req: u64, dispatch: u32, rec: &mut R) {
        let Some(r) = self.inflight.get(&req) else { return };
        if r.dispatch != dispatch {
            return; // stale: the request moved since this was scheduled
        }
        let Loc::OnNode(i) = r.loc else { return };
        let (attempt, traced) = (r.attempt, r.traced);
        self.timeouts += 1;
        rec.tally("serve.timeouts", 1);
        let reclaimed_j = self.remove_from_node(i, req);
        self.breaker_on_failure(self.nodes[i].group, req, rec);
        let group = u16::try_from(self.nodes[i].group).unwrap_or(u16::MAX);
        // A timeout is evidence: if the node really is dead, declare it
        // down now instead of waiting for the next health sweep.
        if self.nodes[i].crashed && matches!(self.nodes[i].admin, Admin::Active | Admin::Draining)
        {
            self.declare_down(i, rec);
        }
        if attempt >= self.cfg.retry.max_retries {
            self.shed_retry += 1;
            rec.tally("serve.shed", 1);
            if let Some(p) = &mut self.plane {
                p.on_shed();
                p.attribute(group, EnergyOutcome::Shed, reclaimed_j);
            }
            if traced {
                rec.span_end(self.now, Track::Dispatcher, "request", req);
            }
            self.inflight.remove(&req);
            return;
        }
        if let Some(p) = &mut self.plane {
            p.attribute(group, EnergyOutcome::Retried, reclaimed_j);
        }
        if let Some(r) = self.inflight.get_mut(&req) {
            r.attempt += 1;
            r.dispatch += 1;
            r.exclude = Some(i);
            r.loc = Loc::Backoff;
            let delay = self.cfg.retry.backoff_s(r.attempt - 1);
            self.retries += 1;
            rec.tally("serve.retries", 1);
            self.push(self.now + delay, EvKind::Redispatch { req });
        }
    }

    fn on_redispatch<R: Recorder>(&mut self, req: u64, _rec: &mut R) {
        let live = matches!(
            self.inflight.get(&req),
            Some(Req { loc: Loc::Backoff, .. })
        );
        if live && !self.dispatch(req) {
            self.pending.push_back(req);
        }
    }

    /// Take `req` off node `i`'s queue or current slot (no accounting of
    /// outcome — callers decide retry vs shed). Returns the busy joules
    /// the evicted attempt had accumulated (0 when it was only queued) so
    /// the caller can attribute them.
    fn remove_from_node(&mut self, i: usize, req: u64) -> f64 {
        self.advance(i);
        let ops = self.inflight.get(&req).map_or(0.0, |r| r.ops);
        let n = &mut self.nodes[i];
        if n.current.as_ref().is_some_and(|c| c.req == req) {
            let reclaimed_j = n.current.take().map_or(0.0, |c| c.energy_j);
            n.epoch += 1;
            self.start_next(i);
            return reclaimed_j;
        }
        if let Some(pos) = n.queue.iter().position(|&q| q == req) {
            n.queue.remove(pos);
            n.queued_ops = (n.queued_ops - ops).max(0.0);
        }
        0.0
    }

    // ---- fault path ------------------------------------------------------

    fn on_fault_window(&mut self, i: usize, window: u32) {
        let w = self.cfg.fault_window_s;
        let base = f64::from(window) * w;
        let n = &self.nodes[i];
        let events = self.plan.events_for_node(
            self.cfg.seed,
            window,
            n.group,
            u32::from(n.in_group),
            w,
        );
        for e in events {
            self.push(base + e.at_s, EvKind::Fault { node: i, kind: e.kind });
        }
        // Next window, unless the run is draining down.
        if !self.arrivals_done {
            self.push(base + w, EvKind::FaultWindow { node: i, window: window + 1 });
        }
    }

    fn on_fault<R: Recorder>(&mut self, i: usize, kind: FaultKind, rec: &mut R) {
        let n = &self.nodes[i];
        // Powered-off nodes cannot fault; already-crashed nodes stay crashed.
        if n.admin == Admin::Deactivated || n.admin == Admin::Down || n.crashed {
            return;
        }
        let track = self.node_track(i);
        rec.instant(self.now, track, kind.label(), 1.0);
        rec.tally(kind.label(), 1);
        match kind {
            FaultKind::Crash => {
                self.crashes += 1;
                self.crash_node(i);
            }
            FaultKind::Stall { duration_s } => {
                self.stalls += 1;
                let until = self.now + duration_s;
                self.stall_node(i, until);
            }
            FaultKind::Straggler { slowdown } => {
                self.stragglers += 1;
                self.advance(i);
                let until = self.now + self.cfg.straggler_duration_s;
                let n = &mut self.nodes[i];
                n.slowdown = n.slowdown.max(slowdown);
                if until > n.slow_until {
                    n.slow_until = until;
                    self.push(until, EvKind::StragglerEnd { node: i });
                }
                self.reschedule_completion(i);
            }
        }
    }

    /// Fail-stop crash of node `i` (shared by per-node crash faults and
    /// correlated rack/PDU events).
    fn crash_node(&mut self, i: usize) {
        self.advance(i);
        let n = &mut self.nodes[i];
        n.crashed = true;
        n.epoch += 1; // cancel any scheduled completion
    }

    /// Stall node `i` until `until` (shared by per-node stall faults and
    /// correlated network partitions). Extensions supersede; shortenings
    /// are ignored.
    fn stall_node(&mut self, i: usize, until: f64) {
        self.advance(i);
        let n = &mut self.nodes[i];
        if until > n.stalled_until {
            n.stalled_until = until;
            n.epoch += 1;
            self.push(until, EvKind::StallEnd { node: i });
        }
    }

    fn on_stall_end(&mut self, i: usize) {
        self.advance(i);
        let n = &self.nodes[i];
        if self.now < n.stalled_until || n.crashed {
            return; // extended by a later stall, or superseded by a crash
        }
        self.reschedule_completion(i);
    }

    fn on_straggler_end(&mut self, i: usize) {
        self.advance(i);
        let n = &mut self.nodes[i];
        if self.now < n.slow_until {
            return; // extended
        }
        n.slowdown = 1.0;
        if !n.crashed {
            self.reschedule_completion(i);
        }
    }

    fn on_health_check<R: Recorder>(&mut self, rec: &mut R) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].crashed
                && matches!(self.nodes[i].admin, Admin::Active | Admin::Draining)
            {
                self.declare_down(i, rec);
            }
        }
        self.push(self.now + self.cfg.health_interval_s, EvKind::HealthCheck);
    }

    /// Detection: mark `i` Down, re-route its backlog (no retry budget
    /// consumed — the requests did nothing wrong), schedule repair.
    fn declare_down<R: Recorder>(&mut self, i: usize, rec: &mut R) {
        self.advance(i);
        let n = &mut self.nodes[i];
        n.admin = Admin::Down;
        n.epoch += 1;
        let mut work: Vec<u64> = Vec::with_capacity(n.queue.len() + 1);
        let mut reclaimed_j = 0.0;
        if let Some(cur) = n.current.take() {
            work.push(cur.req);
            reclaimed_j = cur.energy_j;
        }
        work.extend(n.queue.drain(..));
        n.queued_ops = 0.0;
        n.down_span_open = true;
        let group = u16::try_from(n.group).unwrap_or(u16::MAX);
        if let Some(p) = &mut self.plane {
            p.attribute(group, EnergyOutcome::Retried, reclaimed_j);
        }
        let track = self.node_track(i);
        rec.span_begin(self.now, track, "node.down", i as u64);
        rec.counter(self.now, Track::Controller, "ctl.node_down", 1);
        for req in work {
            if let Some(r) = self.inflight.get_mut(&req) {
                r.loc = Loc::Pending;
                r.dispatch += 1; // invalidate outstanding timeouts
                self.reroutes += 1;
                rec.tally("serve.reroutes", 1);
                self.pending.push_back(req);
            }
        }
        self.push(self.now + self.cfg.repair_s, EvKind::Repair { node: i });
        self.flush_pending();
    }

    fn on_repair<R: Recorder>(&mut self, i: usize, rec: &mut R) {
        if self.nodes[i].admin != Admin::Down {
            return;
        }
        self.advance(i);
        let n = &mut self.nodes[i];
        n.crashed = false;
        n.unpowered = false; // power restored along with the node
        n.stalled_until = f64::NEG_INFINITY;
        n.slowdown = 1.0;
        n.slow_until = f64::NEG_INFINITY;
        n.admin = Admin::Active;
        n.down_span_open = false;
        self.repairs += 1;
        let track = self.node_track(i);
        rec.span_end(self.now, track, "node.down", i as u64);
        rec.counter(self.now, Track::Controller, "ctl.node_up", 1);
        self.flush_pending();
    }

    // ---- correlated failure domains & power emergencies ------------------

    /// Materialize one window of correlated domain faults (mirrors
    /// [`Controller::on_fault_window`], but for the topology plan).
    fn on_domain_window(&mut self, window: u32) {
        let Some(topo) = self.topo else { return };
        let w = self.cfg.fault_window_s;
        let base = f64::from(window) * w;
        for e in topo.events_for_window(self.cfg.seed, window, w) {
            self.push(base + e.at_s, EvKind::DomainFault { event: e });
        }
        if !self.arrivals_done {
            self.push(base + w, EvKind::DomainWindow { window: window + 1 });
        }
    }

    /// Nodes of `domain` a blast-radius event can still hit: powered-off
    /// and already-down/crashed nodes are skipped (nothing to break).
    fn domain_members(&self, domain: Domain) -> Vec<usize> {
        let Some(topo) = self.topo else { return Vec::new() };
        topo.topology
            .domain_nodes(domain)
            .filter(|&i| i < self.nodes.len())
            .filter(|&i| {
                let n = &self.nodes[i];
                !matches!(n.admin, Admin::Deactivated | Admin::Down) && !n.crashed
            })
            .collect()
    }

    /// One correlated fault hits every eligible node of its domain
    /// atomically — same virtual instant, one event.
    fn on_domain_fault<R: Recorder>(&mut self, event: DomainEvent, rec: &mut R) {
        rec.instant(self.now, Track::Controller, event.kind.label(), 1.0);
        rec.tally(event.kind.label(), 1);
        match event.kind {
            DomainFaultKind::RackCrash => {
                self.rack_crashes += 1;
                for i in self.domain_members(event.domain) {
                    self.crash_node(i);
                }
            }
            DomainFaultKind::PduLoss => {
                self.pdu_losses += 1;
                for i in self.domain_members(event.domain) {
                    self.crash_node(i);
                    self.nodes[i].unpowered = true;
                }
            }
            DomainFaultKind::NetworkPartition { duration_s } => {
                self.partitions += 1;
                let until = self.now + duration_s;
                for i in self.domain_members(event.domain) {
                    self.stall_node(i, until);
                }
            }
            DomainFaultKind::PowerEmergency { cap_w, duration_s } => {
                self.power_emergencies += 1;
                let until = self.now + duration_s;
                self.emergency_cap_w = if self.in_emergency() {
                    self.emergency_cap_w.min(cap_w) // overlapping: strictest cap wins
                } else {
                    cap_w
                };
                self.emergency_until_s = self.emergency_until_s.max(until);
                rec.instant(self.now, Track::Controller, "ctl.emergency.begin", cap_w);
                self.push(until, EvKind::EmergencyEnd);
            }
        }
    }

    fn in_emergency(&self) -> bool {
        self.now < self.emergency_until_s
    }

    /// The power cap the control loop enforces right now: the configured
    /// cap, tightened by an active emergency.
    fn effective_cap_w(&self) -> f64 {
        if self.in_emergency() {
            self.cfg.power_cap_w.min(self.emergency_cap_w)
        } else {
            self.cfg.power_cap_w
        }
    }

    fn on_emergency_end<R: Recorder>(&mut self, rec: &mut R) {
        if self.in_emergency() {
            return; // extended by a later emergency; its own end event follows
        }
        if self.emergency_cap_w.is_finite() {
            self.emergency_cap_w = f64::INFINITY;
            self.emergency_level = 0;
            self.shed_class_floor = u8::MAX;
            // Parked nodes and browned-out groups recover through the
            // normal control loop (SLO-breach scale-up), not instantly.
            rec.instant(self.now, Track::Controller, "ctl.emergency.end", 0.0);
        }
    }

    /// Take the next rung of the graceful-degradation ladder — one action
    /// per control tick while an emergency holds and power still exceeds
    /// the emergency cap. A rung repeats across ticks while it keeps
    /// helping (e.g. several DVFS steps), then the ladder advances:
    /// brownout → park the wimpiest node → shed best-effort classes →
    /// shed everything.
    fn emergency_escalate<R: Recorder>(&mut self, rec: &mut R) {
        loop {
            let rung = self.emergency_level;
            let acted = match rung {
                0 => self.dvfs_step_down(rec),
                1 => self.park_wimpy_one(rec),
                2 => {
                    if self.shed_class_floor > 1 {
                        self.shed_class_floor = 1;
                        true
                    } else {
                        false
                    }
                }
                _ => {
                    if self.shed_class_floor > 0 {
                        self.shed_class_floor = 0;
                        true
                    } else {
                        false
                    }
                }
            };
            if acted {
                self.emergency_actions += 1;
                rec.counter(self.now, Track::Controller, "ctl.emergency.action", 1);
                rec.instant(self.now, Track::Controller, "ctl.emergency.rung", f64::from(rung));
                return;
            }
            if self.emergency_level >= 3 {
                return; // ladder exhausted; nothing left to cut
            }
            self.emergency_level += 1;
        }
    }

    /// Park the *wimpiest* Active node (lowest current rate): under an
    /// emergency the goal is watts per op shed, not idle-power ranking,
    /// so the paper's wimpy groups go dark first. Ties go to the lowest
    /// node index.
    fn park_wimpy_one<R: Recorder>(&mut self, rec: &mut R) -> bool {
        if self.admitted_count() <= self.cfg.min_active_nodes {
            return false;
        }
        let candidate = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.admin == Admin::Active)
            .min_by(|(ia, a), (ib, b)| {
                let ra = self.groups[a.group].rate_at[self.groups[a.group].freq_idx];
                let rb = self.groups[b.group].rate_at[self.groups[b.group].freq_idx];
                ra.total_cmp(&rb).then(ia.cmp(ib))
            })
            .map(|(i, _)| i);
        let Some(i) = candidate else { return false };
        self.advance(i);
        let idle = self.nodes[i].current.is_none() && self.nodes[i].queue.is_empty();
        self.nodes[i].admin = if idle { Admin::Deactivated } else { Admin::Draining };
        self.deactivations += 1;
        rec.counter(self.now, Track::Controller, "ctl.deactivate", 1);
        rec.instant(self.now, Track::Controller, "ctl.emergency.park", i as f64);
        true
    }

    // ---- circuit breakers ------------------------------------------------

    /// A dispatch timeout on group `gi`: count it, open the breaker after
    /// `breaker_failures` consecutive ones, and re-open on a failed
    /// half-open probe.
    fn breaker_on_failure<R: Recorder>(&mut self, gi: usize, req: u64, rec: &mut R) {
        if self.cfg.breaker_failures == 0 {
            return;
        }
        match self.groups[gi].breaker {
            Breaker::Closed { fails } => {
                let fails = fails + 1;
                if fails >= self.cfg.breaker_failures {
                    self.open_breaker(gi, 0, rec);
                } else {
                    self.groups[gi].breaker = Breaker::Closed { fails };
                }
            }
            Breaker::HalfOpen { probe, reopens } => {
                if probe == Some(req) {
                    self.open_breaker(gi, reopens + 1, rec);
                }
            }
            Breaker::Open { .. } => {}
        }
    }

    /// A completion on group `gi`: reset the consecutive-failure count,
    /// and close the breaker when the completer was the half-open probe.
    fn breaker_on_success<R: Recorder>(&mut self, gi: usize, req: u64, rec: &mut R) {
        if self.cfg.breaker_failures == 0 {
            return;
        }
        match self.groups[gi].breaker {
            Breaker::Closed { fails: 0 } | Breaker::Open { .. } => {}
            Breaker::Closed { .. } => {
                self.groups[gi].breaker = Breaker::Closed { fails: 0 };
            }
            Breaker::HalfOpen { probe, .. } => {
                if probe == Some(req) {
                    self.groups[gi].breaker = Breaker::Closed { fails: 0 };
                    self.breaker_closes += 1;
                    rec.instant(self.now, Track::Controller, "ctl.breaker.close", gi as f64);
                }
            }
        }
    }

    /// Open group `gi`'s breaker for a jittered hold. The jitter stream
    /// is keyed on `(seed, group, reopen count)` so repeatedly-failing
    /// groups don't re-probe in lockstep — and the draw is reproducible,
    /// keeping the determinism contract.
    fn open_breaker<R: Recorder>(&mut self, gi: usize, reopens: u32, rec: &mut R) {
        let jitter = FaultRng::from_key(&[
            self.cfg.seed,
            0x6272_6b72, // "brkr"
            gi as u64,
            u64::from(reopens),
        ])
        .unit();
        let until_s = self.now + self.cfg.breaker_open_s * (0.5 + jitter);
        self.groups[gi].breaker = Breaker::Open { until_s, reopens };
        self.breaker_opens += 1;
        rec.counter(self.now, Track::Controller, "ctl.breaker.opens", 1);
        rec.instant(self.now, Track::Controller, "ctl.breaker.open", gi as f64);
    }

    /// Per-tick breaker maintenance: expire Open holds into HalfOpen, and
    /// clear a probe whose request resolved elsewhere (rerouted off the
    /// group, shed) so the group isn't stuck waiting on a ghost.
    fn breaker_tick<R: Recorder>(&mut self, rec: &mut R) {
        if self.cfg.breaker_failures == 0 {
            return;
        }
        for gi in 0..self.groups.len() {
            match self.groups[gi].breaker {
                Breaker::Open { until_s, reopens } if self.now >= until_s => {
                    self.groups[gi].breaker = Breaker::HalfOpen { probe: None, reopens };
                    rec.instant(self.now, Track::Controller, "ctl.breaker.half_open", gi as f64);
                }
                Breaker::HalfOpen { probe: Some(id), reopens }
                    if !self.inflight.contains_key(&id) =>
                {
                    self.groups[gi].breaker = Breaker::HalfOpen { probe: None, reopens };
                }
                _ => {}
            }
        }
    }

    // ---- control loop ----------------------------------------------------

    fn on_control_tick<R: Recorder>(&mut self, rec: &mut R) {
        self.breaker_tick(rec);
        let power = self.power_now();
        let p95 = self.tick_sketch.quantile(0.95);
        let p999 = self.tick_sketch.quantile(0.999);
        rec.gauge(self.now, Track::Controller, "ctl.power_w", power);
        if let Some(p) = p95 {
            rec.gauge(self.now, Track::Controller, "ctl.p95_s", p);
        }
        rec.gauge(
            self.now,
            Track::Controller,
            "ctl.inflight",
            self.inflight.len() as f64,
        );
        rec.gauge(
            self.now,
            Track::Controller,
            "ctl.pending",
            self.pending.len() as f64,
        );
        self.decide(power, p95, p999, rec);
        self.tick_sketch = QuantileSketch::new(self.cfg.obs_alpha);
        self.window_arrival_ops = 0.0;
        self.cooldown = self.cooldown.saturating_sub(1);
        self.flush_pending();
        self.push(self.now + self.cfg.tick_s, EvKind::ControlTick);
    }

    /// One reconfiguration decision per tick, in priority order: power cap
    /// (brownout) > SLO breach (scale up, then shed) > energy
    /// proportionality (scale down under sustained headroom).
    fn decide<R: Recorder>(
        &mut self,
        power: f64,
        p95: Option<f64>,
        p999: Option<f64>,
        rec: &mut R,
    ) {
        // 0. Nothing admitted but work outstanding: re-admit a parked node
        // immediately (Down nodes come back via repair instead).
        if self.admitted_count() == 0 && !self.inflight.is_empty() {
            self.activate_one(rec);
            return;
        }
        // 1. Power-cap breach: under an emergency, climb the graceful-
        // degradation ladder; otherwise DVFS brownout, then forced
        // deactivation.
        if power > self.effective_cap_w() {
            if self.in_emergency() {
                self.emergency_escalate(rec);
                self.cooldown = self.cfg.scale_cooldown_ticks;
                return;
            }
            if self.dvfs_step_down(rec) || self.deactivate_one(true, rec) {
                self.cooldown = self.cfg.scale_cooldown_ticks;
            }
            return;
        }
        // 2. SLO breach: capacity first, shedding as the last resort.
        let over_p95 = p95.is_some_and(|p| p > self.cfg.slo_p95_s);
        let over_p999 = self
            .cfg
            .slo_p999_s
            .is_some_and(|slo| p999.is_some_and(|p| p > slo));
        if over_p95 || over_p999 {
            if self.activate_one(rec) || self.dvfs_step_up(power, rec) {
                self.cooldown = self.cfg.scale_cooldown_ticks;
                return;
            }
            // Capacity is exhausted. With the obs plane on, shedding is
            // gated on the multi-window burn-rate alert (a one-tick spike
            // no longer flips shed mode); without it, shed immediately as
            // the legacy controller did.
            let want_shed = self.plane.as_ref().is_none_or(ObsPlane::burn_alert);
            if !self.shed_mode && want_shed {
                self.set_shed(true, rec);
            }
            return;
        }
        // Exit shed mode once the burn rate (or, with the plane off, the
        // window p95) recovers — or everything drained with no samples
        // left to judge by.
        if self.shed_mode {
            let recovered = match &self.plane {
                Some(pl) => pl.burn_fast() < self.cfg.burn_exit,
                None => match p95 {
                    Some(p) => p < SHED_EXIT_P95_FRACTION * self.cfg.slo_p95_s,
                    None => self.inflight.is_empty(),
                },
            };
            if recovered {
                self.set_shed(false, rec);
            }
            return;
        }
        // 3. Energy proportionality: under sustained latency headroom and
        // spare believed capacity, park a node or step DVFS down.
        if self.cooldown > 0 {
            return;
        }
        let headroom = p95.is_some_and(|p| p < SCALE_DOWN_P95_FRACTION * self.cfg.slo_p95_s);
        if !headroom {
            return;
        }
        let demand = self.window_arrival_ops / self.cfg.tick_s;
        if self.capacity_after_parking_one() > demand * CAPACITY_MARGIN
            && self.deactivate_one(false, rec)
        {
            self.cooldown = self.cfg.scale_cooldown_ticks;
        }
    }

    fn set_shed<R: Recorder>(&mut self, on: bool, rec: &mut R) {
        self.shed_mode = on;
        self.shed_toggles += 1;
        if on {
            self.shed_entries += 1;
            rec.span_begin(self.now, Track::Controller, "shed.mode", self.shed_entries);
            rec.counter(self.now, Track::Controller, "ctl.shed_on", 1);
        } else {
            rec.span_end(self.now, Track::Controller, "shed.mode", self.shed_entries);
            rec.counter(self.now, Track::Controller, "ctl.shed_off", 1);
        }
    }

    /// Believed capacity if the preferred park candidate were removed.
    fn capacity_after_parking_one(&self) -> f64 {
        match self.park_candidate() {
            None => f64::NEG_INFINITY,
            Some(i) => {
                let g = &self.groups[self.nodes[i].group];
                self.believed_capacity() - g.rate_at[g.freq_idx]
            }
        }
    }

    /// Which Active node to park next: the one with the highest idle power
    /// (energy proportionality says park the idle-hungriest first), ties
    /// by index. Never drops the admitted count below `min_active_nodes`.
    fn park_candidate(&self) -> Option<usize> {
        if self.admitted_count() <= self.cfg.min_active_nodes {
            return None;
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.admin == Admin::Active)
            .max_by(|(_, a), (_, b)| {
                self.groups[a.group]
                    .idle_w
                    .total_cmp(&self.groups[b.group].idle_w)
                    .then(b.in_group.cmp(&a.in_group)) // prefer the lowest index on ties
            })
            .map(|(i, _)| i)
    }

    fn deactivate_one<R: Recorder>(&mut self, forced: bool, rec: &mut R) -> bool {
        let Some(i) = self.park_candidate() else { return false };
        let _ = forced;
        self.advance(i);
        let idle = self.nodes[i].current.is_none() && self.nodes[i].queue.is_empty();
        self.nodes[i].admin = if idle { Admin::Deactivated } else { Admin::Draining };
        self.deactivations += 1;
        rec.counter(self.now, Track::Controller, "ctl.deactivate", 1);
        rec.instant(self.now, Track::Controller, "ctl.park_node", i as f64);
        true
    }

    /// A Draining node finished its backlog: power it off.
    fn park<R: Recorder>(&mut self, i: usize, rec: &mut R) {
        self.advance(i);
        self.nodes[i].admin = Admin::Deactivated;
        self.nodes[i].epoch += 1;
        rec.instant(self.now, Track::Controller, "ctl.parked", i as f64);
    }

    /// Re-admit the fastest Deactivated node, if any.
    fn activate_one<R: Recorder>(&mut self, rec: &mut R) -> bool {
        let candidate = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.admin == Admin::Deactivated)
            .max_by(|(_, a), (_, b)| {
                let ra = self.groups[a.group].rate_at[self.groups[a.group].freq_idx];
                let rb = self.groups[b.group].rate_at[self.groups[b.group].freq_idx];
                ra.total_cmp(&rb).then(b.in_group.cmp(&a.in_group))
            })
            .map(|(i, _)| i);
        let Some(i) = candidate else { return false };
        self.advance(i);
        self.nodes[i].admin = Admin::Active;
        self.activations += 1;
        rec.counter(self.now, Track::Controller, "ctl.activate", 1);
        rec.instant(self.now, Track::Controller, "ctl.admit_node", i as f64);
        self.flush_pending();
        true
    }

    /// Step the busiest-power group one DVFS level down (brownout).
    fn dvfs_step_down<R: Recorder>(&mut self, rec: &mut R) -> bool {
        let target = self
            .group_indices_with_admitted_nodes()
            .into_iter()
            .filter(|&gi| self.groups[gi].freq_idx > 0)
            .max_by(|&a, &b| {
                self.groups[a].busy_w_at[self.groups[a].freq_idx]
                    .total_cmp(&self.groups[b].busy_w_at[self.groups[b].freq_idx])
            });
        let Some(gi) = target else { return false };
        self.apply_dvfs(gi, self.groups[gi].freq_idx - 1);
        self.dvfs_down += 1;
        rec.counter(self.now, Track::Controller, "ctl.dvfs_down", 1);
        rec.instant(self.now, Track::Controller, "ctl.brownout_group", gi as f64);
        true
    }

    /// Step the group with the largest throughput gain one DVFS level up —
    /// only when under the power cap.
    fn dvfs_step_up<R: Recorder>(&mut self, power: f64, rec: &mut R) -> bool {
        if power > self.effective_cap_w() {
            return false;
        }
        let target = self
            .group_indices_with_admitted_nodes()
            .into_iter()
            .filter(|&gi| self.groups[gi].freq_idx + 1 < self.groups[gi].rate_at.len())
            .max_by(|&a, &b| {
                let gain = |gi: usize| {
                    let g = &self.groups[gi];
                    g.rate_at[g.freq_idx + 1] - g.rate_at[g.freq_idx]
                };
                gain(a).total_cmp(&gain(b))
            });
        let Some(gi) = target else { return false };
        self.apply_dvfs(gi, self.groups[gi].freq_idx + 1);
        self.dvfs_up += 1;
        rec.counter(self.now, Track::Controller, "ctl.dvfs_up", 1);
        rec.instant(self.now, Track::Controller, "ctl.boost_group", gi as f64);
        true
    }

    fn group_indices_with_admitted_nodes(&self) -> Vec<usize> {
        let mut present = vec![false; self.groups.len()];
        for n in &self.nodes {
            if matches!(n.admin, Admin::Active | Admin::Draining) {
                present[n.group] = true;
            }
        }
        present
            .iter()
            .enumerate()
            .filter_map(|(gi, &p)| p.then_some(gi))
            .collect()
    }

    /// Retarget a whole group's DVFS level; running work is re-timed at
    /// the new rate.
    fn apply_dvfs(&mut self, gi: usize, new_idx: usize) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].group == gi {
                self.advance(i);
            }
        }
        self.groups[gi].freq_idx = new_idx;
        for i in 0..self.nodes.len() {
            if self.nodes[i].group == gi && self.nodes[i].current.is_some() {
                self.reschedule_completion(i);
            }
        }
    }

    // ---- shutdown --------------------------------------------------------

    fn finish<R: Recorder>(
        &mut self,
        forced: bool,
        rec: &mut R,
        live: &mut dyn FnMut(&WindowReport),
    ) -> ServeReport {
        for i in 0..self.nodes.len() {
            self.advance(i);
        }
        self.flush_window_energy();
        // Energy still held by in-flight attempts resolves as Retried:
        // the work was real but no completion will ever claim it.
        for i in 0..self.nodes.len() {
            if let Some(cur) = self.nodes[i].current.take() {
                let group = u16::try_from(self.nodes[i].group).unwrap_or(u16::MAX);
                if let Some(p) = &mut self.plane {
                    p.attribute(group, EnergyOutcome::Retried, cur.energy_j);
                }
            }
        }
        if let Some(mut p) = self.plane.take() {
            p.roll_to(self.now, rec, live);
            p.finish(rec, live);
            self.plane = Some(p);
        }
        // Span balance at shutdown: every open span closes here.
        for (&id, r) in &self.inflight {
            if r.traced {
                rec.span_end(self.now, Track::Dispatcher, "request", id);
            }
        }
        for i in 0..self.nodes.len() {
            if self.nodes[i].down_span_open {
                let track = self.node_track(i);
                rec.span_end(self.now, track, "node.down", i as u64);
                self.nodes[i].down_span_open = false;
            }
        }
        if self.shed_mode {
            rec.span_end(self.now, Track::Controller, "shed.mode", self.shed_entries);
        }
        rec.span_end(self.now, Track::Controller, "serve.run", self.cfg.seed);

        let energy_j: f64 = self.nodes.iter().map(|n| n.energy_j).sum();
        // enprop-lint: allow(unit-opaque) -- self.now is the controller's virtual clock, maintained in seconds throughout
        let horizon_s = self.now;
        let nan = f64::NAN;
        ServeReport {
            arrivals: self.arrivals,
            completions: self.completions,
            shed_admission: self.shed_admission,
            shed_retry: self.shed_retry,
            in_flight_at_stop: self.inflight.len() as u64,
            timeouts: self.timeouts,
            retries: self.retries,
            reroutes: self.reroutes,
            crashes: self.crashes,
            stalls: self.stalls,
            stragglers: self.stragglers,
            repairs: self.repairs,
            activations: self.activations,
            deactivations: self.deactivations,
            dvfs_up: self.dvfs_up,
            dvfs_down: self.dvfs_down,
            shed_toggles: self.shed_toggles,
            shed_backpressure: self.shed_backpressure,
            rack_crashes: self.rack_crashes,
            pdu_losses: self.pdu_losses,
            partitions: self.partitions,
            power_emergencies: self.power_emergencies,
            emergency_actions: self.emergency_actions,
            breaker_opens: self.breaker_opens,
            breaker_closes: self.breaker_closes,
            horizon_s,
            energy_j,
            mean_power_w: if horizon_s > 0.0 { energy_j / horizon_s } else { 0.0 },
            mean_response_s: if self.completions > 0 {
                self.resp_sum / self.completions as f64
            } else {
                nan
            },
            p50_s: self.run_sketch.quantile(0.50).unwrap_or(nan),
            p95_s: self.run_sketch.quantile(0.95).unwrap_or(nan),
            p99_s: self.run_sketch.quantile(0.99).unwrap_or(nan),
            p999_s: self.run_sketch.quantile(0.999).unwrap_or(nan),
            events: self.events,
            forced_stop: forced,
        }
    }
}

/// A request size that runs ~20 ms on the cluster's mean node at its
/// spec'd operating point — a sensible serving-scale default the CLI and
/// tests share.
pub fn default_ops_per_request(
    workload: &Workload,
    cluster: &ClusterSpec,
) -> Result<f64, EnpropError> {
    Ok(mean_node_rate(workload, cluster)? * 0.02)
}

/// Total fault-free serving capacity at the spec'd operating points,
/// ops/s.
pub fn cluster_capacity_ops_s(
    workload: &Workload,
    cluster: &ClusterSpec,
) -> Result<f64, EnpropError> {
    let mut total = 0.0;
    for g in &cluster.groups {
        let profile = workload.try_profile(g.spec.name)?;
        let model = SingleNodeModel::new(&profile.spec, &profile.demand, workload.io_rate);
        total += f64::from(g.count) * model.throughput(g.cores, g.freq);
    }
    if !total.is_finite() || total <= 0.0 {
        return Err(EnpropError::EmptyCluster {
            workload: workload.name.to_string(),
        });
    }
    Ok(total)
}

fn mean_node_rate(workload: &Workload, cluster: &ClusterSpec) -> Result<f64, EnpropError> {
    let nodes: u32 = cluster.groups.iter().map(|g| g.count).sum();
    if nodes == 0 {
        return Err(EnpropError::EmptyCluster {
            workload: workload.name.to_string(),
        });
    }
    Ok(cluster_capacity_ops_s(workload, cluster)? / f64::from(nodes))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::arrivals::{ArrivalModel, SyntheticArrivals};
    use enprop_faults::{DomainFaultProfile, FaultPlan, GroupFaultProfile, MtbfModel, Topology};
    use enprop_obs::{MemoryRecorder, NoopRecorder};
    use enprop_workloads::catalog;

    fn setup() -> (Workload, ClusterSpec, f64) {
        let w = catalog::by_name("memcached").unwrap();
        let c = ClusterSpec::a9_k10(4, 2);
        let ops = default_ops_per_request(&w, &c).unwrap();
        (w, c, ops)
    }

    fn poisson_source(w: &Workload, c: &ClusterSpec, ops: f64, n: u64, util: f64, seed: u64) -> ArrivalSource {
        let cap = cluster_capacity_ops_s(w, c).unwrap();
        let rate = util * cap / ops;
        ArrivalSource::Synthetic(
            SyntheticArrivals::new(ArrivalModel::Poisson { rate }, n, ops, 0.2, seed).unwrap(),
        )
    }

    #[test]
    fn clean_run_completes_everything() {
        let (w, c, ops) = setup();
        let cfg = ServeConfig::new(7);
        let plan = FaultPlan::none();
        let mut src = poisson_source(&w, &c, ops, 2000, 0.5, 7);
        let r =
            Controller::run(&w, &c, &plan, &cfg, &mut src, &mut NoopRecorder).unwrap();
        assert_eq!(r.arrivals, 2000);
        assert_eq!(r.completions + r.shed(), 2000);
        assert_eq!(r.in_flight_at_stop, 0);
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(!r.forced_stop);
        assert!(r.energy_j > 0.0);
        assert!(r.p95_s > 0.0);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let (w, c, ops) = setup();
        let cfg = ServeConfig::new(11);
        let profile = GroupFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s: 30.0 },
            kinds: vec![
                (0.5, FaultKind::Crash),
                (0.3, FaultKind::Stall { duration_s: 2.0 }),
                (0.2, FaultKind::Straggler { slowdown: 3.0 }),
            ],
        };
        let plan = FaultPlan::uniform(11, profile, c.groups.len());
        let run = |rec: &mut MemoryRecorder| {
            let mut src = poisson_source(&w, &c, ops, 1500, 0.6, 11);
            Controller::run(&w, &c, &plan, &cfg, &mut src, rec).unwrap()
        };
        let mut rec_a = MemoryRecorder::new();
        let mut rec_b = MemoryRecorder::new();
        let a = run(&mut rec_a);
        let b = run(&mut rec_b);
        assert_eq!(a, b);
        assert_eq!(rec_a.events(), rec_b.events());
    }

    #[test]
    fn crashes_recover_and_conserve() {
        let (w, c, ops) = setup();
        let mut cfg = ServeConfig::new(3);
        cfg.repair_s = 5.0;
        let profile = GroupFaultProfile::crashes(MtbfModel::Exponential { mtbf_s: 20.0 });
        let plan = FaultPlan::uniform(3, profile, c.groups.len());
        let mut src = poisson_source(&w, &c, ops, 3000, 0.5, 3);
        let mut rec = MemoryRecorder::new();
        let r = Controller::run(&w, &c, &plan, &cfg, &mut src, &mut rec).unwrap();
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.crashes > 0, "plan should have injected crashes");
        assert!(r.repairs > 0, "downed nodes should repair");
        assert!(
            rec.counters().get("ctl.node_down").copied().unwrap_or(0) > 0,
            "detection decisions must be visible in telemetry"
        );
    }

    #[test]
    fn overload_triggers_shedding_and_recovers() {
        let (w, c, ops) = setup();
        let mut cfg = ServeConfig::new(5);
        cfg.slo_p95_s = 0.05;
        cfg.max_inflight = 200;
        let plan = FaultPlan::none();
        // 3× overload: shed mode (or the inflight cap) must engage.
        let mut src = poisson_source(&w, &c, ops, 4000, 3.0, 5);
        let r =
            Controller::run(&w, &c, &plan, &cfg, &mut src, &mut NoopRecorder).unwrap();
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.shed() > 0, "3x overload must shed");
        assert!(r.completions > 0, "some requests must still complete");
    }

    #[test]
    fn power_cap_forces_brownout() {
        let (w, c, ops) = setup();
        let mut cfg = ServeConfig::new(9);
        // Cap below the all-busy draw: brownout or parking must follow.
        cfg.power_cap_w = 60.0;
        let plan = FaultPlan::none();
        let mut src = poisson_source(&w, &c, ops, 3000, 0.8, 9);
        let mut rec = MemoryRecorder::new();
        let r = Controller::run(&w, &c, &plan, &cfg, &mut src, &mut rec).unwrap();
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(
            r.dvfs_down + r.deactivations > 0,
            "a breached power cap must trigger brownout/parking: {r:?}"
        );
    }

    #[test]
    fn span_balance_holds_with_faults() {
        let (w, c, ops) = setup();
        let cfg = ServeConfig::new(13);
        let profile = GroupFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s: 15.0 },
            kinds: vec![(0.6, FaultKind::Crash), (0.4, FaultKind::Stall { duration_s: 3.0 })],
        };
        let plan = FaultPlan::uniform(13, profile, c.groups.len());
        let mut src = poisson_source(&w, &c, ops, 1000, 0.7, 13);
        let mut rec = MemoryRecorder::new();
        let r = Controller::run(&w, &c, &plan, &cfg, &mut src, &mut rec).unwrap();
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        let mut open: BTreeMap<(u64, &str, u64), i64> = BTreeMap::new();
        for e in rec.events() {
            match e.kind {
                enprop_obs::EventKind::SpanBegin => {
                    *open.entry((e.track.tid(), e.name, e.id)).or_insert(0) += 1;
                }
                enprop_obs::EventKind::SpanEnd => {
                    *open.entry((e.track.tid(), e.name, e.id)).or_insert(0) -= 1;
                }
                _ => {}
            }
        }
        for (k, v) in open {
            assert_eq!(v, 0, "unbalanced span {k:?}");
        }
    }

    #[test]
    fn schedule_plan_hits_exact_nodes() {
        let (w, c, ops) = setup();
        let mut cfg = ServeConfig::new(21);
        cfg.repair_s = 4.0;
        // Deterministic crash at t=2s on every node of group 0.
        let plan = FaultPlan {
            seed: 21,
            groups: vec![
                GroupFaultProfile {
                    mtbf: MtbfModel::Schedule(vec![2.0]),
                    kinds: vec![(1.0, FaultKind::Crash)],
                },
                GroupFaultProfile::none(),
            ],
        };
        let mut src = poisson_source(&w, &c, ops, 1500, 0.5, 21);
        let r =
            Controller::run(&w, &c, &plan, &cfg, &mut src, &mut NoopRecorder).unwrap();
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.crashes >= 4, "all four A9 nodes crash at t=2: {r:?}");
        assert!(r.repairs >= 4);
        assert!(r.completions > 0);
    }

    #[test]
    fn empty_source_terminates_immediately() {
        let (w, c, _ops) = setup();
        let cfg = ServeConfig::new(1);
        let plan = FaultPlan::none();
        let mut src = ArrivalSource::Replay(crate::trace::ReplayCursor::new(Vec::new()));
        let r =
            Controller::run(&w, &c, &plan, &cfg, &mut src, &mut NoopRecorder).unwrap();
        assert_eq!(r.arrivals, 0);
        assert!(r.conservation_ok());
    }

    /// A domain plan whose every level is inert, over `nodes_per_rack = 2`
    /// and `racks_per_pdu` as given; tests switch individual levels on.
    fn quiet_topo(c: &ClusterSpec, racks_per_pdu: usize) -> TopologyFaultPlan {
        let n: usize = c.groups.iter().map(|g| g.count as usize).sum();
        TopologyFaultPlan::none(Topology::new(n, 2, racks_per_pdu).unwrap())
    }

    fn run_topo(
        cfg: &ServeConfig,
        plan: &FaultPlan,
        topo: &TopologyFaultPlan,
        n: u64,
        util: f64,
    ) -> (ServeReport, MemoryRecorder) {
        let (w, c, ops) = setup();
        let mut src = poisson_source(&w, &c, ops, n, util, cfg.seed);
        let mut rec = MemoryRecorder::new();
        let mut hooks = RunHooks { live: &mut |_| {}, checkpoint: None, kill_after_events: None };
        let out =
            Controller::run_full(&w, &c, plan, Some(topo), cfg, &mut src, &mut rec, &mut hooks)
                .unwrap();
        match out {
            RunOutcome::Completed(r) => (*r, rec),
            RunOutcome::Killed { .. } => panic!("no kill hook installed"),
        }
    }

    #[test]
    fn rack_crash_downs_every_rack_member_atomically() {
        let (_, c, _) = setup();
        let mut cfg = ServeConfig::new(31);
        cfg.repair_s = 4.0;
        let mut topo = quiet_topo(&c, 2);
        // Every rack faults at t=2 — a full-cluster blast the per-node
        // chaos path can never produce in one virtual instant.
        topo.rack = DomainFaultProfile {
            mtbf: MtbfModel::Schedule(vec![2.0]),
            kinds: vec![(1.0, DomainFaultKind::RackCrash)],
        };
        let (r, rec) = run_topo(&cfg, &FaultPlan::none(), &topo, 1500, 0.5);
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.rack_crashes >= 3, "three racks fault at t=2: {r:?}");
        // Atomic blast radius: every eligible member of every rack opens
        // its down-span at the same virtual instant. (A node the
        // autoscaler already parked is not an eligible member.)
        let blast = rec
            .events()
            .iter()
            .filter(|e| {
                e.name == "node.down"
                    // enprop-lint: allow(float-eq) -- Schedule faults fire at the exact listed instant, no arithmetic touches it
                    && e.t_s == 2.0
                    && matches!(e.kind, enprop_obs::EventKind::SpanBegin)
            })
            .count();
        assert!(blast >= 4, "the blast lands in one virtual instant: {blast} nodes");
        assert!(r.repairs >= 4, "downed nodes repair and rejoin: {r:?}");
        assert!(r.completions > 0, "service survives the blast: {r:?}");
        assert!(rec.counters().get("fault.rack_crash").copied().unwrap_or(0) >= 3);
    }

    #[test]
    fn pdu_loss_cuts_power_that_a_plain_crash_still_draws() {
        // Same topology, same schedule, same blast radius (racks_per_pdu=1
        // makes PDU 0 and rack 0 the same node set): the only difference
        // is that a PDU loss de-energizes its nodes, while rack-crashed
        // nodes keep drawing idle power until repaired. The PDU run must
        // therefore consume strictly less energy.
        let (_, c, _) = setup();
        let mut cfg = ServeConfig::new(33);
        cfg.repair_s = 6.0;
        let mut rack_topo = quiet_topo(&c, 1);
        rack_topo.rack = DomainFaultProfile {
            mtbf: MtbfModel::Schedule(vec![2.0]),
            kinds: vec![(1.0, DomainFaultKind::RackCrash)],
        };
        let mut pdu_topo = quiet_topo(&c, 1);
        pdu_topo.pdu = DomainFaultProfile {
            mtbf: MtbfModel::Schedule(vec![2.0]),
            kinds: vec![(1.0, DomainFaultKind::PduLoss)],
        };
        let (rack_r, _) = run_topo(&cfg, &FaultPlan::none(), &rack_topo, 1500, 0.5);
        let (pdu_r, _) = run_topo(&cfg, &FaultPlan::none(), &pdu_topo, 1500, 0.5);
        assert!(rack_r.conservation_ok(), "{}", rack_r.conservation_line());
        assert!(pdu_r.conservation_ok(), "{}", pdu_r.conservation_line());
        assert!(rack_r.rack_crashes >= 1 && rack_r.pdu_losses == 0);
        assert!(pdu_r.pdu_losses >= 1 && pdu_r.rack_crashes == 0);
        assert!(
            pdu_r.energy_j < rack_r.energy_j,
            "unpowered downtime must cost less than idle downtime: pdu {} J vs rack {} J",
            pdu_r.energy_j,
            rack_r.energy_j
        );
    }

    #[test]
    fn power_emergency_walks_the_degradation_ladder() {
        let (_, c, _) = setup();
        let cfg = ServeConfig::new(35);
        let mut topo = quiet_topo(&c, 2);
        // A cap far below the working draw: the ladder must escalate past
        // DVFS brownout into parking and class shedding, then release.
        topo.cluster = DomainFaultProfile {
            mtbf: MtbfModel::Schedule(vec![1.5]),
            kinds: vec![(1.0, DomainFaultKind::PowerEmergency { cap_w: 25.0, duration_s: 6.0 })],
        };
        let (r, rec) = run_topo(&cfg, &FaultPlan::none(), &topo, 3000, 0.8);
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.power_emergencies >= 1, "{r:?}");
        assert!(r.emergency_actions > 0, "the ladder must act under the cap: {r:?}");
        assert!(r.dvfs_down > 0, "rung 0 is DVFS brownout: {r:?}");
        assert!(r.completions > 0, "service continues degraded: {r:?}");
        assert!(rec.counters().get("ctl.emergency.action").copied().unwrap_or(0) > 0);
        let ends = rec
            .events()
            .iter()
            .filter(|e| e.name == "ctl.emergency.end")
            .count();
        assert!(ends >= 1, "the emergency must end and reset the ladder");
    }

    #[test]
    fn breakers_open_on_consecutive_timeouts_and_close_after_probe() {
        let (_, c, _) = setup();
        let mut cfg = ServeConfig::new(37);
        cfg.breaker_failures = 2;
        cfg.breaker_open_s = 1.0;
        // Stall every group-0 node for 4 s: dispatches there time out back
        // to back, the group-0 breaker opens, half-open probes fail while
        // the stall lasts, and the first post-stall probe closes it.
        let plan = FaultPlan {
            seed: 37,
            groups: vec![
                GroupFaultProfile {
                    mtbf: MtbfModel::Schedule(vec![1.0]),
                    kinds: vec![(1.0, FaultKind::Stall { duration_s: 4.0 })],
                },
                GroupFaultProfile::none(),
            ],
        };
        let topo = quiet_topo(&c, 2);
        let (r, rec) = run_topo(&cfg, &plan, &topo, 3000, 0.6);
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.timeouts > 0, "stalled dispatches must time out: {r:?}");
        assert!(r.breaker_opens >= 1, "consecutive timeouts must trip the breaker: {r:?}");
        assert!(r.breaker_closes >= 1, "a successful probe must close it again: {r:?}");
        let names: Vec<&str> = rec.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"ctl.breaker.open"));
        assert!(names.contains(&"ctl.breaker.half_open"));
    }

    #[test]
    fn bounded_pending_queue_sheds_backpressure() {
        let (_, c, _) = setup();
        let mut cfg = ServeConfig::new(39);
        cfg.max_pending = 4;
        cfg.repair_s = 4.0;
        cfg.slo_p95_s = 1e6; // keep SLO admission shedding out of the way
        // A full-cluster blast: with no node dispatchable, admitted
        // arrivals queue up, the tiny pending bound fills, and overflow
        // is shed as backpressure — distinct from admission shedding.
        let mut topo = quiet_topo(&c, 2);
        topo.rack = DomainFaultProfile {
            mtbf: MtbfModel::Schedule(vec![1.0]),
            kinds: vec![(1.0, DomainFaultKind::RackCrash)],
        };
        let (r, _) = run_topo(&cfg, &FaultPlan::none(), &topo, 1500, 0.8);
        assert!(r.conservation_ok(), "{}", r.conservation_line());
        assert!(r.shed_backpressure > 0, "a full pending queue must shed: {r:?}");
        assert!(r.completions > 0, "{r:?}");
    }

    #[test]
    fn helpers_reject_empty_clusters() {
        let (w, _, _) = setup();
        let empty = ClusterSpec::a9_k10(0, 0);
        assert!(default_ops_per_request(&w, &empty).is_err());
        assert!(matches!(
            Controller::run(
                &w,
                &empty,
                &FaultPlan::none(),
                &ServeConfig::new(1),
                &mut ArrivalSource::Replay(crate::trace::ReplayCursor::new(Vec::new())),
                &mut NoopRecorder,
            ),
            Err(EnpropError::EmptyCluster { .. })
        ));
    }
}
