//! Streaming request arrivals: synthetic Poisson / diurnal generators and
//! the replay front end.
//!
//! All randomness flows through keyed [`FaultRng`] streams, so an arrival
//! sequence is a pure function of `(model, seed)` — the serving
//! controller's determinism contract starts here.

use enprop_faults::{EnpropError, FaultRng};

use crate::trace::ReplayCursor;

/// One request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival instant, virtual seconds from serve start.
    pub t_s: f64,
    /// Request size, operations (the unit [`enprop_workloads`] node models
    /// rate in).
    pub ops: f64,
    /// SLO class: 0 = latency-critical, ≥ 1 = best-effort. The emergency
    /// ladder sheds high classes first (DESIGN.md §16).
    pub class: u8,
}

impl Arrival {
    /// A latency-critical (class-0) arrival — the common case and the
    /// implied class of traces that predate the `class` column.
    pub fn new(t_s: f64, ops: f64) -> Self {
        Arrival { t_s, ops, class: 0 }
    }
}

/// The arrival-rate process of a synthetic open-loop load generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Homogeneous Poisson arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// A diurnal (day/night) cycle: a non-homogeneous Poisson process whose
    /// rate swings sinusoidally between `base_rate` (start of each period)
    /// and `peak_rate` (mid-period), sampled by thinning.
    Diurnal {
        /// Trough arrival rate, requests/second.
        base_rate: f64,
        /// Peak arrival rate, requests/second.
        peak_rate: f64,
        /// Cycle length, seconds.
        period_s: f64,
    },
}

impl ArrivalModel {
    /// Validate rates and period.
    pub fn validate(&self) -> Result<(), EnpropError> {
        match *self {
            ArrivalModel::Poisson { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(EnpropError::invalid_parameter(
                        "arrival rate",
                        format!("must be finite and > 0, got {rate}"),
                    ));
                }
            }
            ArrivalModel::Diurnal {
                base_rate,
                peak_rate,
                period_s,
            } => {
                if !base_rate.is_finite() || base_rate <= 0.0 {
                    return Err(EnpropError::invalid_parameter(
                        "base_rate",
                        format!("must be finite and > 0, got {base_rate}"),
                    ));
                }
                if !peak_rate.is_finite() || peak_rate < base_rate {
                    return Err(EnpropError::invalid_parameter(
                        "peak_rate",
                        format!("must be finite and ≥ base_rate, got {peak_rate}"),
                    ));
                }
                if !period_s.is_finite() || period_s <= 0.0 {
                    return Err(EnpropError::invalid_parameter(
                        "period_s",
                        format!("must be finite and > 0, got {period_s}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The envelope rate the thinning sampler proposes at.
    fn peak(&self) -> f64 {
        match *self {
            ArrivalModel::Poisson { rate } => rate,
            ArrivalModel::Diurnal { peak_rate, .. } => peak_rate,
        }
    }

    /// Instantaneous arrival rate at virtual time `t`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalModel::Poisson { rate } => rate,
            ArrivalModel::Diurnal {
                base_rate,
                peak_rate,
                period_s,
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos())
            }
        }
    }
}

/// A finite, seeded synthetic arrival stream.
///
/// Inter-arrival gaps come from one keyed RNG stream, request sizes from a
/// second, so changing the size jitter never perturbs the arrival times.
#[derive(Debug)]
pub struct SyntheticArrivals {
    model: ArrivalModel,
    gap_rng: FaultRng,
    size_rng: FaultRng,
    /// Dedicated class stream: drawing (or not drawing) request classes
    /// never perturbs gaps or sizes.
    class_rng: FaultRng,
    t: f64,
    remaining: u64,
    ops_per_request: f64,
    ops_jitter: f64,
    /// Probability an arrival is best-effort (class 1); 0 = all
    /// latency-critical, the default.
    best_effort: f64,
}

impl SyntheticArrivals {
    /// A stream of `requests` arrivals under `model`. Request sizes are
    /// `ops_per_request` scaled by a uniform factor in
    /// `[1 − ops_jitter, 1 + ops_jitter]` (`ops_jitter` in `[0, 1)`).
    pub fn new(
        model: ArrivalModel,
        requests: u64,
        ops_per_request: f64,
        ops_jitter: f64,
        seed: u64,
    ) -> Result<Self, EnpropError> {
        model.validate()?;
        if !ops_per_request.is_finite() || ops_per_request <= 0.0 {
            return Err(EnpropError::invalid_parameter(
                "ops_per_request",
                format!("must be finite and > 0, got {ops_per_request}"),
            ));
        }
        if !ops_jitter.is_finite() || !(0.0..1.0).contains(&ops_jitter) {
            return Err(EnpropError::invalid_parameter(
                "ops_jitter",
                format!("must be in [0, 1), got {ops_jitter}"),
            ));
        }
        Ok(SyntheticArrivals {
            model,
            gap_rng: FaultRng::from_key(&[seed, 0x61727269]),
            size_rng: FaultRng::from_key(&[seed, 0x73697a65]),
            class_rng: FaultRng::from_key(&[seed, 0x636c6173]),
            t: 0.0,
            remaining: requests,
            ops_per_request,
            ops_jitter,
            best_effort: 0.0,
        })
    }

    /// Mark a fraction of arrivals best-effort (class 1), drawn from a
    /// dedicated stream so gaps and sizes are untouched. `frac` must be
    /// in `[0, 1]`.
    pub fn with_best_effort(mut self, frac: f64) -> Result<Self, EnpropError> {
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            return Err(EnpropError::invalid_parameter(
                "best_effort",
                format!("must be in [0, 1], got {frac}"),
            ));
        }
        self.best_effort = frac;
        Ok(self)
    }

    /// Exponential gap at the envelope rate; `unit()` is in `[0, 1)`, so
    /// `1 − u` is in `(0, 1]` and the log is finite.
    fn exp_gap(&mut self, rate: f64) -> f64 {
        -(1.0 - self.gap_rng.unit()).ln() / rate
    }

    /// Next arrival, or `None` when the stream is exhausted.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let peak = self.model.peak();
        loop {
            self.t += self.exp_gap(peak);
            // Thinning: accept a candidate with probability λ(t)/λ_peak.
            // For the homogeneous model the ratio is 1 and the first
            // candidate always lands.
            if self.gap_rng.unit() * peak < self.model.rate_at(self.t) {
                break;
            }
        }
        let jitter = 1.0 + self.ops_jitter * (2.0 * self.size_rng.unit() - 1.0);
        // Always draw the class so the stream's cursor advances uniformly
        // whether or not best-effort traffic is enabled (checkpoint state
        // stays a pure function of arrivals emitted).
        let class = u8::from(self.class_rng.unit() < self.best_effort);
        Some(Arrival {
            t_s: self.t,
            ops: self.ops_per_request * jitter,
            class,
        })
    }

    /// Capture the generator's cursor — RNG states plus the time/count
    /// position — for the serve snapshot format.
    pub fn state(&self) -> SourceState {
        SourceState::Synthetic {
            gap: self.gap_rng.state(),
            size: self.size_rng.state(),
            class: self.class_rng.state(),
            t: self.t,
            remaining: self.remaining,
        }
    }

    /// Restore the cursor captured by [`SyntheticArrivals::state`]. The
    /// generator must have been constructed with the same model and
    /// parameters as the one the state came from.
    pub fn restore(&mut self, state: &SourceState) -> Result<(), EnpropError> {
        let SourceState::Synthetic { gap, size, class, t, remaining } = state else {
            return Err(EnpropError::invalid_config(
                "snapshot source cursor is a replay cursor, but the run uses a synthetic generator",
            ));
        };
        self.gap_rng = FaultRng::from_state(*gap);
        self.size_rng = FaultRng::from_state(*size);
        self.class_rng = FaultRng::from_state(*class);
        self.t = *t;
        self.remaining = *remaining;
        Ok(())
    }
}

/// Checkpoint cursor of an [`ArrivalSource`]: everything needed to resume
/// the stream exactly where a snapshot left it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceState {
    /// A [`SyntheticArrivals`] cursor: the three RNG states plus position.
    Synthetic {
        /// Gap-stream xoshiro state.
        gap: [u64; 4],
        /// Size-stream xoshiro state.
        size: [u64; 4],
        /// Class-stream xoshiro state.
        class: [u64; 4],
        /// Virtual time of the last emitted arrival.
        t: f64,
        /// Arrivals still to emit.
        remaining: u64,
    },
    /// A [`ReplayCursor`] position.
    Replay {
        /// Index of the next trace arrival to emit.
        next: usize,
    },
}

/// What feeds the controller: a live generator or a recorded trace.
#[derive(Debug)]
pub enum ArrivalSource {
    /// Synthetic open-loop generator ([`SyntheticArrivals`]).
    Synthetic(SyntheticArrivals),
    /// Replay of a parsed JSONL trace ([`ReplayCursor`]).
    Replay(ReplayCursor),
}

impl ArrivalSource {
    /// Pull the next arrival, or `None` at end of stream.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        match self {
            ArrivalSource::Synthetic(s) => s.next_arrival(),
            ArrivalSource::Replay(r) => r.next_arrival(),
        }
    }

    /// Capture the stream cursor for checkpointing.
    pub fn state(&self) -> SourceState {
        match self {
            ArrivalSource::Synthetic(s) => s.state(),
            ArrivalSource::Replay(r) => SourceState::Replay { next: r.position() },
        }
    }

    /// Restore a cursor captured by [`ArrivalSource::state`] onto a
    /// freshly-constructed source of the *same kind and parameters*.
    /// A kind mismatch (snapshot from a replay resumed against a
    /// generator, or vice versa) is a typed configuration error.
    pub fn restore(&mut self, state: &SourceState) -> Result<(), EnpropError> {
        match (self, state) {
            (ArrivalSource::Synthetic(s), st @ SourceState::Synthetic { .. }) => s.restore(st),
            (ArrivalSource::Replay(r), SourceState::Replay { next }) => r.seek(*next),
            (ArrivalSource::Synthetic(_), SourceState::Replay { .. }) => {
                Err(EnpropError::invalid_config(
                    "snapshot source cursor is a replay cursor, but the run uses a synthetic generator",
                ))
            }
            (ArrivalSource::Replay(_), SourceState::Synthetic { .. }) => {
                Err(EnpropError::invalid_config(
                    "snapshot source cursor is a synthetic generator, but the run replays a trace",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: SyntheticArrivals) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(a) = s.next_arrival() {
            out.push(a);
        }
        out
    }

    #[test]
    fn poisson_stream_is_finite_ordered_and_deterministic() {
        let m = ArrivalModel::Poisson { rate: 100.0 };
        let a = drain(SyntheticArrivals::new(m, 500, 1000.0, 0.2, 7).unwrap());
        let b = drain(SyntheticArrivals::new(m, 500, 1000.0, 0.2, 7).unwrap());
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].t_s > w[0].t_s);
        }
        for x in &a {
            assert!(x.ops >= 800.0 - 1e-9 && x.ops <= 1200.0 + 1e-9, "ops {}", x.ops);
        }
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let m = ArrivalModel::Poisson { rate: 50.0 };
        let a = drain(SyntheticArrivals::new(m, 20_000, 1.0, 0.0, 3).unwrap());
        let horizon = a.last().map(|x| x.t_s).unwrap_or(0.0);
        let rate = a.len() as f64 / horizon;
        assert!((rate - 50.0).abs() < 2.0, "empirical rate {rate}");
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let m = ArrivalModel::Diurnal {
            base_rate: 10.0,
            peak_rate: 100.0,
            period_s: 100.0,
        };
        assert!((m.rate_at(0.0) - 10.0).abs() < 1e-9);
        assert!((m.rate_at(50.0) - 100.0).abs() < 1e-9);
        // Thinning concentrates arrivals mid-period.
        let a = drain(SyntheticArrivals::new(m, 10_000, 1.0, 0.0, 11).unwrap());
        let in_first_period: Vec<_> = a.iter().filter(|x| x.t_s < 100.0).collect();
        let mid = in_first_period
            .iter()
            .filter(|x| x.t_s > 25.0 && x.t_s < 75.0)
            .count();
        assert!(
            mid * 2 > in_first_period.len(),
            "mid-period arrivals {} of {}",
            mid,
            in_first_period.len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let m = ArrivalModel::Poisson { rate: 10.0 };
        let a = drain(SyntheticArrivals::new(m, 50, 1.0, 0.0, 1).unwrap());
        let b = drain(SyntheticArrivals::new(m, 50, 1.0, 0.0, 2).unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_models_are_rejected() {
        assert!(ArrivalModel::Poisson { rate: 0.0 }.validate().is_err());
        assert!(ArrivalModel::Poisson { rate: f64::NAN }.validate().is_err());
        assert!(ArrivalModel::Diurnal {
            base_rate: 10.0,
            peak_rate: 5.0,
            period_s: 100.0
        }
        .validate()
        .is_err());
        let m = ArrivalModel::Poisson { rate: 1.0 };
        assert!(SyntheticArrivals::new(m, 1, 0.0, 0.0, 1).is_err());
        assert!(SyntheticArrivals::new(m, 1, 1.0, 1.0, 1).is_err());
    }
}
