#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Checkpoint/resume property tests (DESIGN.md §16): a serving run killed
//! at *any* event and resumed from its last crash-consistent snapshot
//! must be indistinguishable from the uninterrupted run —
//!
//! - **report identity**: the resumed run's [`enprop_serve::ServeReport`]
//!   is bit-for-bit the uninterrupted run's (joule-for-joule energy,
//!   identical counters and quantiles);
//! - **event identity**: the resumed run's telemetry stream is exactly
//!   the uninterrupted stream's suffix from the resume point on;
//! - **snapshot identity**: every checkpoint the killed run wrote equals
//!   the uninterrupted run's checkpoint of the same index — a snapshot
//!   never depends on the run's future.
//!
//! The scenarios layer correlated domain faults (rack crashes, PDU
//! losses, partitions, power emergencies) on top of per-node chaos, so
//! the snapshot round-trips the full §16 state surface: breakers,
//! emergency ladder, unpowered nodes and the domain event stream.

use enprop_clustersim::ClusterSpec;
use enprop_faults::{
    DomainFaultKind, DomainFaultProfile, FaultKind, FaultPlan, GroupFaultProfile, MtbfModel,
    Topology, TopologyFaultPlan,
};
use enprop_obs::MemoryRecorder;
use enprop_serve::{
    ArrivalModel, ArrivalSource, Controller, RunHooks, RunOutcome, ServeConfig, ServeReport,
    SyntheticArrivals,
};
use enprop_workloads::{catalog, Workload};
use proptest::prelude::*;

struct Scenario {
    workload: Workload,
    cluster: ClusterSpec,
    plan: FaultPlan,
    topo: TopologyFaultPlan,
    cfg: ServeConfig,
    requests: u64,
}

fn scenario(seed: u64, a9: u32, requests: u64, rack_mtbf_s: f64, em_cap_w: f64) -> Scenario {
    let workload = catalog::by_name("EP").unwrap();
    let cluster = ClusterSpec::a9_k10(a9, 1);
    let profile = GroupFaultProfile {
        mtbf: MtbfModel::Exponential { mtbf_s: 15.0 },
        kinds: vec![
            (1.0, FaultKind::Crash),
            (1.0, FaultKind::Stall { duration_s: 1.0 }),
            (1.0, FaultKind::Straggler { slowdown: 3.0 }),
        ],
    };
    let plan = FaultPlan::uniform(seed, profile, cluster.groups.len());
    let n_nodes: usize = cluster.groups.iter().map(|g| g.count as usize).sum();
    let topo = TopologyFaultPlan {
        seed,
        topology: Topology::new(n_nodes, 2, 2).unwrap(),
        rack: DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s: rack_mtbf_s },
            kinds: vec![
                (1.0, DomainFaultKind::RackCrash),
                (1.0, DomainFaultKind::NetworkPartition { duration_s: 2.0 }),
            ],
        },
        pdu: DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s: rack_mtbf_s * 2.0 },
            kinds: vec![(1.0, DomainFaultKind::PduLoss)],
        },
        cluster: DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s: rack_mtbf_s },
            kinds: vec![(
                1.0,
                DomainFaultKind::PowerEmergency { cap_w: em_cap_w, duration_s: 8.0 },
            )],
        },
    };
    let mut cfg = ServeConfig::new(seed);
    cfg.repair_s = 5.0;
    cfg.breaker_failures = 3; // aggressive: make breakers trip in-scenario
    cfg.breaker_open_s = 2.0;
    cfg.max_pending = 64; // small: exercise backpressure shedding
    cfg.obs_window_s = 0.25; // frequent window closes → many checkpoints per run
    Scenario { workload, cluster, plan, topo, cfg, requests }
}

fn source_for(s: &Scenario) -> ArrivalSource {
    let ops = enprop_serve::default_ops_per_request(&s.workload, &s.cluster).unwrap();
    let rate =
        0.9 * enprop_serve::cluster_capacity_ops_s(&s.workload, &s.cluster).unwrap() / ops;
    ArrivalSource::Synthetic(
        SyntheticArrivals::new(ArrivalModel::Poisson { rate }, s.requests, ops, 0.3, s.cfg.seed)
            .unwrap()
            .with_best_effort(0.4)
            .unwrap(),
    )
}

struct Run {
    outcome: RunOutcome,
    rec: MemoryRecorder,
    checkpoints: Vec<String>,
}

fn run(s: &Scenario, kill_after_events: Option<u64>) -> Run {
    let mut source = source_for(s);
    let mut rec = MemoryRecorder::new();
    let mut checkpoints: Vec<String> = Vec::new();
    let mut sink = |snap: &str| checkpoints.push(snap.to_string());
    let mut hooks = RunHooks {
        live: &mut |_| {},
        checkpoint: Some(&mut sink),
        kill_after_events,
    };
    let outcome = Controller::run_full(
        &s.workload,
        &s.cluster,
        &s.plan,
        Some(&s.topo),
        &s.cfg,
        &mut source,
        &mut rec,
        &mut hooks,
    )
    .expect("a valid scenario must not error");
    Run { outcome, rec, checkpoints }
}

fn resume(s: &Scenario, snapshot: &str) -> (ServeReport, MemoryRecorder) {
    let mut source = source_for(s);
    let mut rec = MemoryRecorder::new();
    let mut hooks = RunHooks { live: &mut |_| {}, checkpoint: None, kill_after_events: None };
    let outcome = Controller::resume_full(
        &s.workload,
        &s.cluster,
        &s.plan,
        Some(&s.topo),
        &s.cfg,
        &mut source,
        &mut rec,
        snapshot,
        &mut hooks,
    )
    .expect("resume from a good snapshot must not error");
    match outcome {
        RunOutcome::Completed(r) => (*r, rec),
        RunOutcome::Killed { .. } => panic!("no kill hook installed"),
    }
}

/// `ServeReport` equality through Debug text: identical runs can both
/// report `NaN` quantiles (nothing completed in a window), which `==`
/// would reject. Shortest-roundtrip float formatting keeps this
/// bit-exact for every non-NaN value.
fn same_report(a: &ServeReport, b: &ServeReport) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill at any event, resume from the last checkpoint: the combined
    /// run is event-for-event and joule-for-joule the uninterrupted run.
    #[test]
    fn kill_anywhere_resume_is_identical(
        seed in 0u64..10_000,
        a9 in 1u32..4,
        requests in 150u64..500,
        rack_mtbf_s in 8.0f64..40.0,
        em_cap_w in 20.0f64..200.0,
        kill_frac in 0.05f64..0.95,
    ) {
        let s = scenario(seed, a9, requests, rack_mtbf_s, em_cap_w);

        // The uninterrupted reference run.
        let full = run(&s, None);
        let RunOutcome::Completed(report_a) = &full.outcome else {
            panic!("uninterrupted run must complete");
        };
        prop_assert!(report_a.conservation_ok(), "{}", report_a.conservation_line());
        prop_assume!(!full.checkpoints.is_empty()); // needs ≥ 1 window close

        // Kill the same scenario mid-flight.
        let kill_at = 1 + (kill_frac * report_a.events as f64) as u64;
        let killed = run(&s, Some(kill_at));
        let RunOutcome::Killed { events, .. } = killed.outcome else {
            // The kill landed past the natural end; nothing to resume.
            return Ok(());
        };
        prop_assert!(events >= kill_at);
        prop_assume!(!killed.checkpoints.is_empty());

        // Snapshot identity: everything the killed run checkpointed is
        // what the uninterrupted run checkpointed at the same index.
        prop_assert!(killed.checkpoints.len() <= full.checkpoints.len());
        for (i, (k, f)) in killed.checkpoints.iter().zip(&full.checkpoints).enumerate() {
            prop_assert_eq!(k, f, "checkpoint {} diverged", i);
        }

        // Resume from the killed run's last checkpoint.
        let snap = killed.checkpoints.last().unwrap();
        let (report_r, rec_r) = resume(&s, snap);
        prop_assert!(
            same_report(report_a, &report_r),
            "resumed report diverged:\n  full   {report_a:?}\n  resume {report_r:?}"
        );
        prop_assert_eq!(report_a.energy_j.to_bits(), report_r.energy_j.to_bits());

        // Event identity: the resumed telemetry is exactly the tail of
        // the uninterrupted stream.
        let full_events = full.rec.events();
        let resumed_events = rec_r.events();
        prop_assert!(resumed_events.len() <= full_events.len());
        prop_assert_eq!(
            &full_events[full_events.len() - resumed_events.len()..],
            resumed_events
        );

        // And resuming twice is deterministic.
        let (report_r2, rec_r2) = resume(&s, snap);
        prop_assert!(same_report(&report_r, &report_r2));
        prop_assert_eq!(rec_r.events(), rec_r2.events());
    }
}

/// A snapshot cut off mid-write (any prefix that loses the trailer) is a
/// typed configuration error — exit 2, never a silently-divergent resume.
#[test]
fn truncated_snapshot_is_a_typed_error() {
    let s = scenario(7, 2, 200, 10.0, 60.0);
    let full = run(&s, None);
    assert!(matches!(full.outcome, RunOutcome::Completed(_)));
    let snap = full.checkpoints.first().expect("at least one checkpoint");

    // Shear off the trailer and half a line.
    let cut = &snap[..snap.len() - snap.lines().last().unwrap().len() - 10];
    let mut source = source_for(&s);
    let mut rec = MemoryRecorder::new();
    let mut hooks = RunHooks { live: &mut |_| {}, checkpoint: None, kill_after_events: None };
    let err = Controller::resume_full(
        &s.workload,
        &s.cluster,
        &s.plan,
        Some(&s.topo),
        &s.cfg,
        &mut source,
        &mut rec,
        cut,
        &mut hooks,
    )
    .expect_err("truncated snapshot must not resume");
    assert_eq!(err.exit_code(), 2, "InvalidConfig → exit 2: {err}");
    let msg = err.to_string();
    assert!(msg.contains("truncated"), "must say truncated: {msg}");
}

/// A snapshot resumed against the wrong seed is rejected up front.
#[test]
fn wrong_seed_is_rejected() {
    let s = scenario(7, 2, 200, 10.0, 60.0);
    let full = run(&s, None);
    let snap = full.checkpoints.first().expect("at least one checkpoint");

    let mut wrong = scenario(8, 2, 200, 10.0, 60.0);
    wrong.topo.seed = 7; // isolate the cfg-seed check
    let mut source = source_for(&wrong);
    let mut rec = MemoryRecorder::new();
    let mut hooks = RunHooks { live: &mut |_| {}, checkpoint: None, kill_after_events: None };
    let err = Controller::resume_full(
        &wrong.workload,
        &wrong.cluster,
        &wrong.plan,
        Some(&wrong.topo),
        &wrong.cfg,
        &mut source,
        &mut rec,
        snap,
        &mut hooks,
    )
    .expect_err("wrong seed must not resume");
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("seed"), "{err}");
}

/// Regression: a resumed run must continue the recorder's running counter
/// totals. This pins a once-failing generated case where `ctl.node_down`
/// fired both before and after the kill point, so the resumed stream's
/// second `Counter` event read `total: 1` instead of `total: 2` until the
/// snapshot grew its `"cnt"` section. Sweeps every 5% kill point.
#[test]
fn counter_totals_survive_resume() {
    let s = scenario(9194, 1, 478, 13.943577447516066, 66.87684056696177);
    let full = run(&s, None);
    let RunOutcome::Completed(report_a) = &full.outcome else {
        panic!("uninterrupted run must complete");
    };
    for pct in 1..20 {
        let kill_at = 1 + report_a.events * pct / 20;
        let killed = run(&s, Some(kill_at));
        if !matches!(killed.outcome, RunOutcome::Killed { .. }) {
            continue;
        }
        for (i, (k, f)) in killed.checkpoints.iter().zip(&full.checkpoints).enumerate() {
            assert_eq!(k, f, "kill@{kill_at}: checkpoint {i} diverged");
        }
        let Some(snap) = killed.checkpoints.last() else { continue };
        let (report_r, rec_r) = resume(&s, snap);
        assert!(same_report(report_a, &report_r), "kill@{kill_at}: report diverged");
        let fe = full.rec.events();
        let re = rec_r.events();
        assert_eq!(
            &fe[fe.len() - re.len()..],
            re,
            "kill@{kill_at}: resumed event tail diverged"
        );
    }
}
