#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Chaos property tests: the serving controller's robustness invariants
//! must hold under *randomized* fault plans, cluster shapes, loads and
//! control-loop settings — not just the hand-picked unit-test scenarios.
//!
//! Invariants checked per generated scenario:
//!
//! - **conservation**: `arrivals = completions + shed + in-flight`,
//! - **span balance**: every telemetry span opened during the run is
//!   closed by shutdown,
//! - **determinism**: the same scenario re-run gives a bit-identical
//!   report and event stream,
//! - **termination**: the run returns (no deadlock, no livelock) — a
//!   `Result::Err` other than a validated-input error fails the test.

use enprop_clustersim::ClusterSpec;
use enprop_faults::{FaultKind, FaultPlan, GroupFaultProfile, MtbfModel};
use enprop_obs::MemoryRecorder;
use enprop_serve::{
    spans_balanced, sweep_plan, ArrivalModel, ArrivalSource, Controller, ServeConfig,
    SyntheticArrivals,
};
use enprop_workloads::{catalog, Workload};
use proptest::prelude::*;

fn workload_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("EP"), Just("memcached"), Just("x264")]
}

/// An aggressive mixed fault profile: MTBFs short enough that a ~60 s
/// serving run sees many faults per node.
fn fault_profile() -> impl Strategy<Value = GroupFaultProfile> {
    (
        2.0f64..40.0, // mtbf_s
        0.2f64..5.0,  // stall duration
        1.5f64..8.0,  // straggler slowdown
        0.0f64..1.0,  // crash weight
        0.0f64..1.0,  // stall weight
        0.0f64..1.0,  // straggler weight
    )
        .prop_map(|(mtbf_s, stall_s, slowdown, wc, ws, wg)| {
            let kinds = if wc + ws + wg > 0.0 {
                vec![
                    (wc, FaultKind::Crash),
                    (ws, FaultKind::Stall { duration_s: stall_s }),
                    (wg, FaultKind::Straggler { slowdown }),
                ]
            } else {
                vec![(1.0, FaultKind::Crash)]
            };
            GroupFaultProfile {
                mtbf: MtbfModel::Exponential { mtbf_s },
                kinds,
            }
        })
}

struct Scenario {
    workload: Workload,
    cluster: ClusterSpec,
    plan: FaultPlan,
    cfg: ServeConfig,
    requests: u64,
    utilization: f64,
}

fn run_once(s: &Scenario) -> (enprop_serve::ServeReport, MemoryRecorder) {
    let ops = enprop_serve::default_ops_per_request(&s.workload, &s.cluster).unwrap();
    let rate =
        s.utilization * enprop_serve::cluster_capacity_ops_s(&s.workload, &s.cluster).unwrap()
            / ops;
    let arrivals = SyntheticArrivals::new(
        ArrivalModel::Poisson { rate },
        s.requests,
        ops,
        0.3,
        s.cfg.seed,
    )
    .unwrap();
    let mut source = ArrivalSource::Synthetic(arrivals);
    let mut rec = MemoryRecorder::new();
    let report =
        Controller::run(&s.workload, &s.cluster, &s.plan, &s.cfg, &mut source, &mut rec)
            .expect("a valid chaos scenario must terminate cleanly");
    (report, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation and span balance under fully randomized fault plans,
    /// cluster shapes and load levels.
    #[test]
    fn invariants_hold_under_randomized_chaos(
        name in workload_name(),
        a9 in 1u32..5,
        k10 in 0u32..3,
        profile in fault_profile(),
        seed in 0u64..10_000,
        requests in 200u64..1200,
        utilization in 0.2f64..2.5,
        repair_s in 1.0f64..20.0,
        max_inflight in 50usize..2000,
    ) {
        let workload = catalog::by_name(name).unwrap();
        let cluster = ClusterSpec::a9_k10(a9, k10);
        let plan = FaultPlan::uniform(seed, profile, cluster.groups.len());
        let mut cfg = ServeConfig::new(seed);
        cfg.repair_s = repair_s;
        cfg.max_inflight = max_inflight;
        let s = Scenario { workload, cluster, plan, cfg, requests, utilization };

        let (report, rec) = run_once(&s);
        prop_assert_eq!(report.arrivals, requests);
        prop_assert!(report.conservation_ok(), "{}", report.conservation_line());
        prop_assert!(spans_balanced(&rec), "unbalanced spans: {report:?}");
        // A forced stop is allowed under chaos, but it must still account
        // for every in-flight request.
        if !report.forced_stop {
            prop_assert_eq!(report.in_flight_at_stop, 0);
        }
    }

    /// The same scenario replayed from scratch is bit-identical: report
    /// AND the full telemetry event stream.
    #[test]
    fn chaos_runs_are_deterministic(
        name in workload_name(),
        a9 in 1u32..4,
        profile in fault_profile(),
        seed in 0u64..10_000,
        requests in 100u64..600,
    ) {
        let workload = catalog::by_name(name).unwrap();
        let cluster = ClusterSpec::a9_k10(a9, 1);
        let plan = FaultPlan::uniform(seed, profile, cluster.groups.len());
        let cfg = ServeConfig::new(seed);
        let s = Scenario {
            workload, cluster, plan, cfg, requests, utilization: 0.8,
        };

        let (a, rec_a) = run_once(&s);
        let (b, rec_b) = run_once(&s);
        prop_assert_eq!(a, b);
        prop_assert_eq!(rec_a.events(), rec_b.events());
        prop_assert_eq!(rec_a.counters(), rec_b.counters());
    }

    /// The sweep-plan generator itself: deterministic in its key and
    /// always valid, never inert (a chaos sweep that injects nothing
    /// tests nothing).
    #[test]
    fn sweep_plans_are_reproducible_and_never_inert(
        seed in 0u64..100_000,
        index in 0u32..64,
        groups in 1usize..4,
    ) {
        let a = sweep_plan(seed, index, groups);
        let b = sweep_plan(seed, index, groups);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.validate().is_ok());
        prop_assert!(!a.is_inert());
    }
}
