#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Sketch-vs-oracle property tests for the serving plane (DESIGN.md §14).
//!
//! The controller's report quantiles come from a bounded-memory
//! [`enprop_obs::QuantileSketch`]; `enprop_queueing::exact_quantile` over
//! the full buffered response stream stays in the tree as the *test
//! oracle*. These tests capture that stream through the `Recorder` hook
//! (`serve.response_s` — the exact values the run-level sketch sees) and
//! pin:
//!
//! - **oracle agreement**: every reported percentile lies within the
//!   sketch's documented relative-error bound of the bracketing order
//!   statistics that `exact_quantile` interpolates between,
//! - **windowed conservation**: summing the live `WindowReport` stream
//!   reproduces the run totals — arrivals, completions, sheds and joules
//!   are never lost to windowing, under randomized chaos.

use enprop_clustersim::ClusterSpec;
use enprop_faults::{FaultKind, FaultPlan, GroupFaultProfile, MtbfModel};
use enprop_obs::{PowerSample, Recorder, Track};
use enprop_queueing::exact_quantile;
use enprop_serve::{
    ArrivalModel, ArrivalSource, Controller, ServeConfig, ServeReport, SyntheticArrivals,
    WindowReport,
};
use enprop_workloads::catalog;
use proptest::prelude::*;

/// Captures every `serve.response_s` observation — bit-identical to the
/// stream feeding the controller's run-level sketch — and discards the
/// rest of the telemetry.
#[derive(Default)]
struct OracleRecorder {
    responses: Vec<f64>,
}

impl Recorder for OracleRecorder {
    const ACTIVE: bool = true;
    fn span_begin(&mut self, _t: f64, _track: Track, _name: &'static str, _id: u64) {}
    fn span_end(&mut self, _t: f64, _track: Track, _name: &'static str, _id: u64) {}
    fn instant(&mut self, _t: f64, _track: Track, _name: &'static str, _value: f64) {}
    fn counter(&mut self, _t: f64, _track: Track, _name: &'static str, _delta: u64) {}
    fn tally(&mut self, _name: &'static str, _delta: u64) {}
    fn gauge(&mut self, _t: f64, _track: Track, _name: &'static str, _value: f64) {}
    fn power(&mut self, _t: f64, _track: Track, _sample: PowerSample) {}
    fn observe(&mut self, name: &'static str, value: f64) {
        if name == "serve.response_s" {
            self.responses.push(value);
        }
    }
}

/// An aggressive mixed fault profile (same shape as the chaos tests).
fn fault_profile() -> impl Strategy<Value = GroupFaultProfile> {
    (2.0f64..40.0, 0.2f64..5.0, 1.5f64..8.0).prop_map(|(mtbf_s, stall_s, slowdown)| {
        GroupFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds: vec![
                (0.5, FaultKind::Crash),
                (0.3, FaultKind::Stall { duration_s: stall_s }),
                (0.2, FaultKind::Straggler { slowdown }),
            ],
        }
    })
}

fn run_chaos(
    a9: u32,
    k10: u32,
    profile: GroupFaultProfile,
    seed: u64,
    requests: u64,
    utilization: f64,
) -> (ServeReport, Vec<f64>, Vec<WindowReport>) {
    let workload = catalog::by_name("memcached").unwrap();
    let cluster = ClusterSpec::a9_k10(a9, k10);
    let plan = FaultPlan::uniform(seed, profile, cluster.groups.len());
    let cfg = ServeConfig::new(seed);
    let ops = enprop_serve::default_ops_per_request(&workload, &cluster).unwrap();
    let rate =
        utilization * enprop_serve::cluster_capacity_ops_s(&workload, &cluster).unwrap() / ops;
    let arrivals =
        SyntheticArrivals::new(ArrivalModel::Poisson { rate }, requests, ops, 0.3, seed).unwrap();
    let mut source = ArrivalSource::Synthetic(arrivals);
    let mut rec = OracleRecorder::default();
    let mut windows: Vec<WindowReport> = Vec::new();
    let report = Controller::run_live(
        &workload,
        &cluster,
        &plan,
        &cfg,
        &mut source,
        &mut rec,
        &mut |w| windows.push(w.clone()),
    )
    .expect("a valid chaos scenario must terminate cleanly");
    (report, rec.responses, windows)
}

/// Check one reported percentile against the oracle stream: with
/// `x_lo ≤ x_hi` the order statistics bracketing the type-7 `q`-quantile
/// (the values `exact_quantile` interpolates between), the sketch-backed
/// report value must satisfy the documented bound
/// `(1 − α)·x_lo ≤ v ≤ (1 + α)·x_hi`.
fn check_percentile(
    sorted: &[f64],
    q: f64,
    reported: f64,
    alpha: f64,
) -> Result<(), TestCaseError> {
    let n = sorted.len();
    let rank = (q * (n - 1) as f64).floor() as usize;
    let x_lo = sorted[rank];
    let x_hi = sorted[(rank + 1).min(n - 1)];
    let lo = (1.0 - alpha) * x_lo * (1.0 - 1e-9);
    let hi = (1.0 + alpha) * x_hi * (1.0 + 1e-9);
    prop_assert!(
        lo <= reported && reported <= hi,
        "q={}: reported {} outside [{}, {}] (n={})",
        q,
        reported,
        lo,
        hi,
        n
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The report's sketch-backed percentiles agree with `exact_quantile`
    /// over the buffered response stream, within the documented bound,
    /// under randomized chaos.
    #[test]
    fn report_quantiles_match_the_exact_oracle(
        a9 in 1u32..4,
        k10 in 0u32..3,
        profile in fault_profile(),
        seed in 0u64..10_000,
        requests in 200u64..800,
        utilization in 0.3f64..1.5,
    ) {
        let (report, responses, _) =
            run_chaos(a9, k10, profile, seed, requests, utilization);
        prop_assume!(responses.len() >= 2);
        prop_assert_eq!(responses.len() as u64, report.completions);

        let alpha = ServeConfig::new(seed).obs_alpha;
        let mut sorted = responses.clone();
        sorted.sort_by(f64::total_cmp);
        for (q, reported) in [
            (0.50, report.p50_s),
            (0.95, report.p95_s),
            (0.99, report.p99_s),
            (0.999, report.p999_s),
        ] {
            // The interpolated exact value must sit inside the bracket the
            // bound is stated against — ties the sketch to the oracle.
            let exact = exact_quantile(&responses, q).unwrap();
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let x_hi = sorted[(rank + 1).min(sorted.len() - 1)];
            prop_assert!(sorted[rank] <= exact && exact <= x_hi);
            check_percentile(&sorted, q, reported, alpha)?;
        }
    }

    /// Summing the live window stream reproduces the run totals: windowing
    /// conserves arrivals, completions, sheds and joules under chaos.
    #[test]
    fn windowed_totals_conserve_under_chaos(
        a9 in 1u32..4,
        k10 in 0u32..3,
        profile in fault_profile(),
        seed in 0u64..10_000,
        requests in 100u64..600,
        utilization in 0.3f64..2.0,
    ) {
        let (report, responses, windows) =
            run_chaos(a9, k10, profile, seed, requests, utilization);
        prop_assert!(report.conservation_ok(), "{}", report.conservation_line());
        prop_assert!(!windows.is_empty(), "plane on by default, must emit windows");

        let arrivals: u64 = windows.iter().map(|w| w.arrivals).sum();
        let completions: u64 = windows.iter().map(|w| w.completions).sum();
        let shed: u64 = windows.iter().map(|w| w.shed).sum();
        prop_assert_eq!(arrivals, report.arrivals);
        prop_assert_eq!(completions, report.completions);
        prop_assert_eq!(completions, responses.len() as u64);
        prop_assert_eq!(shed, report.shed());

        // Joules: the per-window group books partition exactly the energy
        // the controller integrates; only float summation order differs.
        let window_j: f64 = windows.iter().map(WindowReport::energy_j).sum();
        prop_assert!(
            (window_j - report.energy_j).abs() <= 1e-6 * report.energy_j.abs().max(1.0),
            "window energy {} vs report {}", window_j, report.energy_j
        );

        // Window indices strictly increase: each window closes once.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
    }
}
