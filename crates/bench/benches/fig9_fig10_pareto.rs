//! Bench: regenerating Figs. 9 (EP) and 10 (x264) — normalized power
//! curves of the Pareto mixes plus crossover detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_clustersim::ClusterSpec;
use enprop_core::{normalized_power_samples, ClusterModel};
use enprop_metrics::{crossovers_against, GridSpec};

fn bench_pareto_curves(c: &mut Criterion) {
    let grid = GridSpec::new(200);
    let mixes = enprop_bench::pareto_mixes();
    let mut group = c.benchmark_group("fig9_fig10_pareto");
    for name in ["EP", "x264"] {
        let w = enprop_workloads::catalog::by_name(name).expect("workload is in the catalog");
        let reference = ClusterModel::new(w.clone(), ClusterSpec::a9_k10(32, 12));
        let ref_peak = reference.busy_power_w();
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                mixes
                    .iter()
                    .map(|mix| {
                        let model = ClusterModel::new(w.clone(), mix.clone());
                        let samples = normalized_power_samples(&model, ref_peak, grid);
                        crossovers_against(&samples, 100.0, grid)
                    })
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pareto_curves);
criterion_main!(benches);
