//! Bench: regenerating Table 4 (model-vs-simulation validation) — times
//! one validation run per workload and asserts the error bands hold under
//! the benchmark configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_clustersim::{validate, ClusterSpec};
use enprop_core::table4;

fn bench_table4(c: &mut Criterion) {
    let cluster = ClusterSpec::a9_k10(4, 2);
    let mut group = c.benchmark_group("table4_validation");
    group.sample_size(10);
    for w in enprop_bench::workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| validate(w, &cluster, 3, 7));
        });
    }
    group.bench_function("full_table", |b| b.iter(|| table4(2, 7)));
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
