//! Bench: regenerating Figs. 5a–c and 6a–c — single-node proportionality
//! and PPR curves over the utilization grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_core::ClusterModel;
use enprop_metrics::PowerCurve;

fn bench_curves(c: &mut Criterion) {
    let grid = enprop_bench::utilization_grid();
    let mut group = c.benchmark_group("fig5_fig6_single_node_curves");
    for name in ["EP", "x264", "blackscholes"] {
        let w = enprop_workloads::catalog::by_name(name).expect("workload is in the catalog");
        group.bench_with_input(BenchmarkId::new("fig5", name), &w, |b, w| {
            b.iter(|| {
                let mut out = Vec::new();
                for node in ["A9", "K10"] {
                    let m = ClusterModel::single_node(w.clone(), node);
                    let curve = m.power_curve();
                    out.push(grid.iter().map(|&u| curve.normalized(u)).collect::<Vec<_>>());
                }
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("fig6", name), &w, |b, w| {
            b.iter(|| {
                let mut out = Vec::new();
                for node in ["A9", "K10"] {
                    let m = ClusterModel::single_node(w.clone(), node);
                    let ppr = m.ppr_curve();
                    out.push(grid.iter().map(|&u| ppr.ppr(u)).collect::<Vec<_>>());
                }
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
