//! Perf bench for the evaluation pipeline rebuild: sequential/uncached vs
//! pooled vs pooled+memoized at the footnote-4 scale (36,380
//! configurations), with a bit-identity cross-check between the variants.
//!
//! The vendored criterion stub smoke-runs closures without timing, so the
//! comparisons here are hand-timed (best of [`REPS`]) with wall-clock
//! `Instant` — legal in this crate, which measures host time by design.
//! The ≥3× pooled speedup claim only holds with real cores underneath, so
//! that assertion gates on `available_parallelism() >= 4`; the cache
//! speedup is thread-independent and is asserted everywhere.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use enprop_explore::{
    configurations, count_configurations, evaluate_space_with, EvalOptions, EvaluatedConfig,
    TypeSpace,
};
use enprop_workloads::Workload;
use std::time::Instant;

/// Best-of-n repetitions for the hand-timed comparisons.
const REPS: usize = 3;

fn footnote4() -> [TypeSpace; 2] {
    [TypeSpace::a9(10), TypeSpace::k10(10)]
}

/// Run one full-space evaluation under `opts`, returning the results and
/// the best wall-clock seconds over [`REPS`] runs.
fn timed_eval(w: &Workload, types: &[TypeSpace], opts: EvalOptions) -> (Vec<EvaluatedConfig>, f64) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..REPS {
        let start = Instant::now();
        let (evald, _) = evaluate_space_with(w, configurations(types), opts);
        best = best.min(start.elapsed().as_secs_f64());
        out = evald;
    }
    (out, best)
}

fn bench_space_eval(c: &mut Criterion) {
    let types = footnote4();
    assert_eq!(count_configurations(&types), 36_380);
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let seq = EvalOptions {
        threads: Some(1),
        cache: false,
    };
    let pooled = EvalOptions {
        threads: None,
        cache: false,
    };
    let pooled_cached = EvalOptions::default();

    let (base, t_seq) = timed_eval(&w, &types, seq);
    let (par, t_pooled) = timed_eval(&w, &types, pooled);
    let (memo, t_cached) = timed_eval(&w, &types, pooled_cached);
    eprintln!(
        "space_eval: 36,380 configs on {cores} core(s): sequential {:.1} ms, \
         pooled {:.1} ms ({:.2}x), pooled+cache {:.1} ms ({:.2}x)",
        t_seq * 1e3,
        t_pooled * 1e3,
        t_seq / t_pooled,
        t_cached * 1e3,
        t_seq / t_cached
    );

    // Bit-identity: the optimized paths must reproduce the sequential
    // uncached sweep exactly (DESIGN.md §12), not just approximately.
    for (a, b) in base.iter().zip(&par).chain(base.iter().zip(&memo)) {
        assert_eq!(a.job_time.to_bits(), b.job_time.to_bits());
        assert_eq!(a.job_energy.to_bits(), b.job_energy.to_bits());
        assert_eq!(a.busy_power_w.to_bits(), b.busy_power_w.to_bits());
    }

    // The memo collapses 36,380 evaluations onto 38 operating points; even
    // on one core it must comfortably beat the uncached sweep.
    assert!(
        t_cached <= t_seq,
        "pooled+cache ({:.1} ms) slower than sequential ({:.1} ms)",
        t_cached * 1e3,
        t_seq * 1e3
    );
    // The pool itself needs real cores before a speedup claim makes sense.
    if cores >= 4 {
        assert!(
            t_seq / t_cached >= 3.0,
            "expected >= 3x on {cores} cores, got {:.2}x",
            t_seq / t_cached
        );
    }

    // Criterion smoke coverage so this bench shows up with the others.
    let mut group = c.benchmark_group("space_eval");
    group.sample_size(10);
    group.bench_function("sequential_uncached", |b| {
        b.iter(|| evaluate_space_with(&w, configurations(&types), black_box(seq)).0.len())
    });
    group.bench_function("pooled", |b| {
        b.iter(|| evaluate_space_with(&w, configurations(&types), black_box(pooled)).0.len())
    });
    group.bench_function("pooled_cached", |b| {
        b.iter(|| {
            evaluate_space_with(&w, configurations(&types), black_box(pooled_cached))
                .0
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_space_eval);
criterion_main!(benches);
