//! Ablation bench: analytic M/D/1 p95 vs discrete-event simulation — the
//! cost argument for using the closed form in Figs. 11–12 (the DES is the
//! ground truth, the Crommelin series is ~10⁴× cheaper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_queueing::{QueueSim, MD1};

fn bench_queueing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queueing");
    group.sample_size(10);
    for u in [0.5, 0.8, 0.95] {
        group.bench_with_input(BenchmarkId::new("md1_p95_analytic", u), &u, |b, &u| {
            b.iter(|| MD1::from_utilization(0.01, u).response_time_quantile(0.95))
        });
        group.bench_with_input(BenchmarkId::new("md1_p95_des_50k_jobs", u), &u, |b, &u| {
            b.iter(|| {
                QueueSim::md1(0.01, u)
                    .run(50_000, 5_000, 42)
                    .response_quantile(0.95)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queueing);
criterion_main!(benches);
