//! Bench: the real workload kernels — sequential vs Rayon-parallel
//! throughput on the host (the paper measured these programs on its
//! testbed; this is the living equivalent).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use enprop_workloads::kernels;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    group.throughput(Throughput::Elements(200_000));
    group.bench_function("ep_sequential", |b| {
        b.iter(|| kernels::ep::kernel(100_000, 271_828_183, false))
    });
    group.bench_function("ep_parallel", |b| {
        b.iter(|| kernels::ep::kernel(100_000, 271_828_183, true))
    });

    let opts = kernels::blackscholes::portfolio(100_000, 42);
    group.throughput(Throughput::Elements(opts.len() as u64));
    group.bench_function("blackscholes_sequential", |b| {
        b.iter(|| kernels::blackscholes::kernel(&opts, false))
    });
    group.bench_function("blackscholes_parallel", |b| {
        b.iter(|| kernels::blackscholes::kernel(&opts, true))
    });

    group.throughput(Throughput::Elements(2));
    group.bench_function("x264_motion_estimation", |b| {
        b.iter(|| kernels::x264::kernel(320, 192, 2, 8, true))
    });

    group.throughput(Throughput::Elements(50_000));
    group.bench_function("memcached_kvstore", |b| {
        b.iter(|| kernels::kvstore::kernel(5_000, 50_000, 1024, 7))
    });

    group.throughput(Throughput::Elements(160_000));
    group.bench_function("julius_gmm_viterbi", |b| {
        b.iter(|| kernels::julius::kernel(160_000, 5))
    });

    group.throughput(Throughput::Elements(4));
    group.bench_function("rsa2048_verify_montgomery", |b| {
        b.iter(|| kernels::rsa::kernel(4, 42, false))
    });

    // Ablation: schoolbook square-and-multiply vs the Montgomery kernel.
    let n = kernels::rsa::bench_modulus_2048();
    let e = kernels::rsa::BigUint::from_u64(65537);
    let sig = kernels::rsa::BigUint::from_u64(0xDEAD_BEEF).shl(700);
    group.throughput(Throughput::Elements(1));
    group.bench_function("rsa2048_verify_schoolbook", |b| {
        b.iter(|| sig.modpow(&e, &n))
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
