//! Ablation bench: the strategy-comparison machinery — sleep management,
//! dynamic switching and heuristic search, at the scales the `strategies`
//! and `search` commands use.

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_explore::{local_search, DynamicEnvelope, SleepManagedCluster, SleepPolicy, TypeSpace};
use enprop_metrics::GridSpec;

fn bench_strategies(c: &mut Criterion) {
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let grid = GridSpec::new(100);
    let mut group = c.benchmark_group("ablation_strategies");
    group.sample_size(10);
    group.bench_function("sleep_power_curve", |b| {
        let s = SleepManagedCluster::homogeneous(&w, "K10", 16, SleepPolicy::barely_alive());
        b.iter(|| s.power_curve(grid))
    });
    group.bench_function("dynamic_envelope_curve", |b| {
        let e = DynamicEnvelope::shed_brawny_ladder(&w, 32, 12);
        b.iter(|| e.power_curve(grid))
    });
    group.bench_function("local_search_139k_space", |b| {
        let types = [TypeSpace::a9(32), TypeSpace::k10(12)];
        b.iter(|| local_search(&w, &types, 0.05, 4, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
