//! Bench: regenerating Table 8 — cluster-wide metrics for the three
//! budget columns of every workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_clustersim::ClusterSpec;
use enprop_core::ClusterModel;

fn bench_table8(c: &mut Criterion) {
    let mixes = [(128u32, 0u32), (64, 8), (0, 16)];
    let mut group = c.benchmark_group("table8_cluster");
    for w in enprop_bench::workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                mixes
                    .iter()
                    .map(|&(a9, k10)| {
                        ClusterModel::new(w.clone(), ClusterSpec::a9_k10(a9, k10)).metrics()
                    })
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table8);
criterion_main!(benches);
