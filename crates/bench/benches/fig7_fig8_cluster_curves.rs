//! Bench: regenerating Figs. 7 and 8 — cluster-wide proportionality and
//! PPR curves for the five 1 kW budget mixes running EP.

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_core::ClusterModel;
use enprop_metrics::PowerCurve;

fn bench_cluster_curves(c: &mut Criterion) {
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let mixes = enprop_bench::budget_mixes();
    let grid = enprop_bench::utilization_grid();
    let mut group = c.benchmark_group("fig7_fig8_cluster_curves");
    group.bench_function("fig7_proportionality", |b| {
        b.iter(|| {
            mixes
                .iter()
                .map(|m| {
                    let model = ClusterModel::new(w.clone(), m.clone());
                    let curve = model.power_curve();
                    grid.iter().map(|&u| curve.normalized(u)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("fig8_ppr", |b| {
        b.iter(|| {
            mixes
                .iter()
                .map(|m| {
                    let model = ClusterModel::new(w.clone(), m.clone());
                    let ppr = model.ppr_curve();
                    grid.iter().map(|&u| ppr.ppr(u)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_curves);
criterion_main!(benches);
