//! Ablation bench: metric evaluation cost for the linear model curve vs
//! the quadratic curve of Hsu & Poole (ICPP'13) vs a dense sampled curve —
//! the design choice DESIGN.md calls out (the paper's model is linear;
//! real servers trend quadratic).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_metrics::{
    GridSpec, LinearCurve, ProportionalityMetrics, QuadraticCurve, SampledCurve,
};

fn bench_curves(c: &mut Criterion) {
    let grid = GridSpec::new(1000);
    let linear = LinearCurve::new(45.0, 69.0);
    let quad = QuadraticCurve::new(45.0, 69.0, 0.4);
    let sampled = SampledCurve::from_curve(&quad, 1000);

    let mut group = c.benchmark_group("ablation_power_curve");
    group.bench_function("metrics_linear", |b| {
        b.iter(|| ProportionalityMetrics::with_grid(&linear, grid))
    });
    group.bench_function("metrics_quadratic", |b| {
        b.iter(|| ProportionalityMetrics::with_grid(&quad, grid))
    });
    group.bench_function("metrics_sampled_1000pt", |b| {
        b.iter(|| ProportionalityMetrics::with_grid(&sampled, grid))
    });
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
