//! Ablation bench: the dynamic-switching extension — envelope construction
//! and evaluation cost vs a static model, across ladder depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_explore::DynamicEnvelope;
use enprop_metrics::GridSpec;

fn bench_dynamic(c: &mut Criterion) {
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let grid = GridSpec::new(100);
    let mut group = c.benchmark_group("ablation_dynamic");
    for (a9, k10) in [(8u32, 4u32), (32, 12), (64, 24)] {
        group.bench_with_input(
            BenchmarkId::new("build_ladder", format!("{a9}a9_{k10}k10")),
            &(a9, k10),
            |b, &(a9, k10)| b.iter(|| DynamicEnvelope::shed_brawny_ladder(&w, a9, k10)),
        );
    }
    let envelope = DynamicEnvelope::shed_brawny_ladder(&w, 32, 12);
    group.bench_function("power_curve_100pt", |b| {
        b.iter(|| envelope.power_curve(grid))
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
