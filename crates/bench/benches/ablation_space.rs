//! Ablation bench: configuration-space machinery at the paper's scale —
//! enumeration, parallel model evaluation and Pareto extraction for the
//! footnote-4 space (36,380 configurations).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_explore::{
    count_configurations, enumerate_configurations, evaluate_space, pareto_front, TypeSpace,
};

fn bench_space(c: &mut Criterion) {
    let types = [TypeSpace::a9(10), TypeSpace::k10(10)];
    assert_eq!(count_configurations(&types), 36_380);
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");

    let mut group = c.benchmark_group("ablation_space");
    group.sample_size(10);
    group.bench_function("enumerate_36380", |b| {
        b.iter(|| enumerate_configurations(&types).len())
    });
    let configs = enumerate_configurations(&types);
    group.bench_function("evaluate_36380_parallel", |b| {
        b.iter(|| evaluate_space(&w, configs.clone()).len())
    });
    let evald = evaluate_space(&w, configs);
    group.bench_function("pareto_front_36380", |b| b.iter(|| pareto_front(&evald).len()));
    group.finish();
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
