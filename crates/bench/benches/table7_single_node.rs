//! Bench: regenerating Table 7 — single-node proportionality metrics for
//! every workload on both node types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_core::single_node_row;

fn bench_table7(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_single_node");
    for w in enprop_bench::workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| (single_node_row(w, "A9"), single_node_row(w, "K10")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
