//! Bench: regenerating Table 6 — the PPR-optimal configuration sweep of
//! every (workload, node type) pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_core::best_ppr_config;

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_ppr");
    for w in enprop_bench::workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| (best_ppr_config(w, "A9"), best_ppr_config(w, "K10")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
