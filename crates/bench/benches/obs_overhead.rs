//! Telemetry overhead bench: the uninstrumented job path vs the same path
//! threaded through a no-op recorder (must be free), a switched-off
//! runtime recorder (one branch per event site), and a full in-memory
//! recorder (the real cost of recording).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_clustersim::{ClusterSim, ClusterSpec};
use enprop_obs::{MemoryRecorder, Recorder, SwitchRecorder, Track};

fn bench_obs_overhead(c: &mut Criterion) {
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let cluster = ClusterSpec::a9_k10(8, 4);
    let sim = ClusterSim::new(&w, &cluster);
    let mut group = c.benchmark_group("obs_overhead");

    group.bench_function("run_job_plain", |b| b.iter(|| sim.run_job(7)));
    group.bench_function("run_job_obs_switch_off", |b| {
        let mut rec = SwitchRecorder::Off;
        b.iter(|| sim.run_job_obs(7, 0.0, &mut rec))
    });
    group.bench_function("run_job_obs_memory", |b| {
        b.iter(|| {
            let mut rec = MemoryRecorder::new();
            sim.run_job_obs(7, 0.0, &mut rec)
        })
    });

    // The raw recording cost per event, isolated from the simulator.
    group.bench_function("memory_recorder_span_pair", |b| {
        let mut rec = MemoryRecorder::new();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            rec.span_begin(0.0, Track::Cluster, "job", id);
            rec.span_end(1.0, Track::Cluster, "job", id);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
