//! Bench: regenerating Figs. 11 (EP) and 12 (x264) — 95th-percentile
//! response times of the Pareto mixes across the utilization grid, via the
//! M/D/1 waiting-time distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_core::ClusterModel;

fn bench_response(c: &mut Criterion) {
    let grid = enprop_bench::response_grid();
    let mixes = enprop_bench::pareto_mixes();
    let mut group = c.benchmark_group("fig11_fig12_response");
    group.sample_size(20);
    for name in ["EP", "x264"] {
        let w = enprop_workloads::catalog::by_name(name).expect("workload is in the catalog");
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                mixes
                    .iter()
                    .map(|mix| {
                        let model = ClusterModel::new(w.clone(), mix.clone());
                        grid.iter()
                            .map(|&u| model.p95_response_time(u))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_response);
criterion_main!(benches);
