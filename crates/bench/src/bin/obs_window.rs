//! `just obs-smoke` perf leg: the observability-plane overhead gate.
//!
//! Runs the same synthetic serving workload twice — once with the plane
//! disabled (`obs_window_s = 0`, the pre-plane fast path) and once with
//! the default windowed plane on — median over interleaved pairs, and asserts the
//! windowed path costs at most [`MAX_OVERHEAD`] over the baseline. The
//! plane's contract is bounded memory *and* bounded CPU: per-completion
//! work is one sketch insert plus O(1) accumulator updates, so a serving
//! run must not slow measurably when it's on.
//!
//! Appends both timings to `BENCH_serve_replay.json` (JSONL, same record
//! shape as `BENCH_obs.json`).

use enprop_clustersim::ClusterSpec;
use enprop_obs::{append_bench_record, peak_rss_kb, BenchRecord, NoopRecorder};
use enprop_serve::{
    cluster_capacity_ops_s, default_ops_per_request, ArrivalModel, ArrivalSource, Controller,
    ServeConfig, SyntheticArrivals,
};
use enprop_workloads::catalog;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Interleaved (off, on) measurement pairs; the gate uses the median
/// of the within-pair ratios.
const REPS: usize = 5;
/// Requests served per run.
const REQUESTS: u64 = 400_000;
/// Windowed path may cost at most this factor over the plane-off baseline.
const MAX_OVERHEAD: f64 = 1.10;
/// Full-measurement retries before the gate fails. Host noise can only
/// *inflate* a median-of-pairs estimate, so the minimum across attempts
/// is the faithful one; a genuine regression fails every attempt.
const ATTEMPTS: usize = 3;
const SEED: u64 = 7;

fn run_once(cfg: &ServeConfig, rate: f64, ops: f64) -> f64 {
    let workload = catalog::by_name("memcached").expect("memcached is in the catalog");
    let cluster = ClusterSpec::a9_k10(6, 2);
    let plan = enprop_faults::FaultPlan::none();
    let arrivals =
        SyntheticArrivals::new(ArrivalModel::Poisson { rate }, REQUESTS, ops, 0.2, SEED)
            .expect("valid arrival model");
    let mut source = ArrivalSource::Synthetic(arrivals);
    let start = Instant::now();
    let report = Controller::run(&workload, &cluster, &plan, cfg, &mut source, &mut NoopRecorder)
        .expect("serving run must terminate cleanly");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.conservation_ok(),
        "conservation violated: {}",
        report.conservation_line()
    );
    ms
}

/// Overhead estimate robust to slowly-varying host noise (turbo decay,
/// thermal throttling, noisy neighbours): run the two configurations in
/// interleaved pairs, take the on/off ratio *within* each pair — the two
/// adjacent runs see the same noise regime — and report the median ratio
/// across `REPS` pairs. Best-of times per side ride along for the bench
/// records. One untimed warmup pair first: the run after a build pays
/// page-cache and branch-training costs neither side should be charged.
fn measure_overhead(
    off_cfg: &ServeConfig,
    on_cfg: &ServeConfig,
    rate: f64,
    ops: f64,
) -> (f64, f64, f64) {
    run_once(off_cfg, rate, ops);
    run_once(on_cfg, rate, ops);
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let off = run_once(off_cfg, rate, ops);
        let on = run_once(on_cfg, rate, ops);
        off_ms = off_ms.min(off);
        on_ms = on_ms.min(on);
        ratios.push(on / off);
    }
    ratios.sort_by(f64::total_cmp);
    (off_ms, on_ms, ratios[ratios.len() / 2])
}

fn main() -> ExitCode {
    let workload = catalog::by_name("memcached").expect("memcached is in the catalog");
    let cluster = ClusterSpec::a9_k10(6, 2);
    let ops = default_ops_per_request(&workload, &cluster).expect("cluster has capacity");
    let rate = 0.6 * cluster_capacity_ops_s(&workload, &cluster).expect("cluster has capacity") / ops;

    println!("obs-window: {REQUESTS} requests, plane off vs on ({REPS} interleaved pairs)");
    let mut off_cfg = ServeConfig::new(SEED);
    off_cfg.obs_window_s = 0.0;
    let on_cfg = ServeConfig::new(SEED); // defaults: 1 s windows, α = 0.01

    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let (off, on, ratio) = measure_overhead(&off_cfg, &on_cfg, rate, ops);
        off_ms = off_ms.min(off);
        on_ms = on_ms.min(on);
        overhead = overhead.min(ratio);
        if overhead <= MAX_OVERHEAD {
            break;
        }
        eprintln!("  attempt {attempt}/{ATTEMPTS}: {ratio:.3}x over the ceiling; remeasuring");
    }
    println!("  plane off: {off_ms:>9.1} ms (best)");
    println!("  plane on : {on_ms:>9.1} ms (best)   median pair ratio {overhead:.3}x");

    let path = Path::new("BENCH_serve_replay.json");
    for (cmd, wall_ms) in [
        ("obs_window.plane_off", off_ms),
        ("obs_window.plane_on", on_ms),
    ] {
        let mut record = BenchRecord::new(cmd, wall_ms, SEED);
        record.req_per_s = Some(REQUESTS as f64 / (wall_ms / 1e3));
        record.peak_rss_kb = peak_rss_kb();
        if let Err(e) = append_bench_record(path, &record) {
            eprintln!("obs-window: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!("  appended 2 records to {}", path.display());

    if overhead > MAX_OVERHEAD {
        eprintln!(
            "obs-window: FAIL — windowed plane costs {overhead:.3}x the disabled baseline \
             (ceiling {MAX_OVERHEAD}x)"
        );
        return ExitCode::FAILURE;
    }
    println!("obs-window: OK");
    ExitCode::SUCCESS
}
