//! `just serve-smoke` perf leg: a throughput gate for the online serving
//! controller. Runs a large synthetic serving workload (with an active
//! mixed fault plan) best-of-3, asserts the event loop clears a floor of
//! requests per wall-second, and appends the timing to
//! `BENCH_serve_replay.json` (JSONL, same record shape as
//! `BENCH_obs.json`).
//!
//! The floor is deliberately loose — an order of magnitude under typical
//! release-build throughput — so the gate trips on algorithmic
//! regressions (a quadratic dispatch scan, a leaked event storm), not on
//! machine noise.

use enprop_clustersim::ClusterSpec;
use enprop_faults::{FaultKind, FaultPlan, GroupFaultProfile, MtbfModel};
use enprop_obs::{append_bench_record, peak_rss_kb, BenchRecord, NoopRecorder};
use enprop_serve::{
    cluster_capacity_ops_s, default_ops_per_request, ArrivalModel, ArrivalSource, Controller,
    ServeConfig, SyntheticArrivals,
};
use enprop_workloads::catalog;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Best-of-n repetitions.
const REPS: usize = 3;
/// Requests served per run.
const REQUESTS: u64 = 1_000_000;
/// Minimum acceptable throughput, requests per wall-second.
const FLOOR_REQ_PER_S: f64 = 100_000.0;
const SEED: u64 = 7;

fn main() -> ExitCode {
    let workload = catalog::by_name("memcached").expect("memcached is in the catalog");
    let cluster = ClusterSpec::a9_k10(6, 2);
    let ops = default_ops_per_request(&workload, &cluster).expect("cluster has capacity");
    let capacity = cluster_capacity_ops_s(&workload, &cluster).expect("cluster has capacity");
    let rate = 0.6 * capacity / ops;
    let profile = GroupFaultProfile {
        mtbf: MtbfModel::Exponential { mtbf_s: 120.0 },
        kinds: vec![
            (0.5, FaultKind::Crash),
            (0.3, FaultKind::Stall { duration_s: 2.0 }),
            (0.2, FaultKind::Straggler { slowdown: 3.0 }),
        ],
    };
    let plan = FaultPlan::uniform(SEED, profile, cluster.groups.len());
    let mut cfg = ServeConfig::new(SEED);
    cfg.repair_s = 15.0;
    println!(
        "serve-replay: {REQUESTS} requests on {} ({} nodes), active fault plan",
        cluster.label(),
        cluster.node_count()
    );

    let mut best_ms = f64::INFINITY;
    let mut last_events = 0;
    for _ in 0..REPS {
        let arrivals = SyntheticArrivals::new(
            ArrivalModel::Poisson { rate },
            REQUESTS,
            ops,
            0.2,
            SEED,
        )
        .expect("valid arrival model");
        let mut source = ArrivalSource::Synthetic(arrivals);
        let start = Instant::now();
        let report = Controller::run(
            &workload,
            &cluster,
            &plan,
            &cfg,
            &mut source,
            &mut NoopRecorder,
        )
        .expect("serving run must terminate cleanly");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last_events = report.events;
        assert_eq!(report.arrivals, REQUESTS);
        assert!(
            report.conservation_ok(),
            "conservation violated: {}",
            report.conservation_line()
        );
    }
    let req_per_s = REQUESTS as f64 / (best_ms / 1e3);
    let rss = peak_rss_kb();
    println!("  best of {REPS}: {best_ms:>9.1} ms   {req_per_s:>12.0} req/s   {last_events} events");
    if let Some(kb) = rss {
        println!("  peak RSS: {kb} kB");
    }

    let path = Path::new("BENCH_serve_replay.json");
    let mut record = BenchRecord::new("serve_replay.1m_chaos", best_ms, SEED);
    record.req_per_s = Some(req_per_s);
    record.peak_rss_kb = rss;
    if let Err(e) = append_bench_record(path, &record) {
        eprintln!("serve-replay: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("  appended 1 record to {}", path.display());

    if req_per_s < FLOOR_REQ_PER_S {
        eprintln!(
            "serve-replay: FAIL — {req_per_s:.0} req/s is under the {FLOOR_REQ_PER_S:.0} req/s floor"
        );
        return ExitCode::FAILURE;
    }
    println!("serve-replay: OK");
    ExitCode::SUCCESS
}
