//! `just perf-smoke`: a fast perf regression gate for the evaluation
//! pipeline. Runs a reduced configuration-space sweep (EP over ≤ 8 A9 +
//! ≤ 6 K10) three ways — sequential/uncached, pooled/uncached and
//! pooled+memoized — best-of-3 each, asserts the optimized path did not
//! regress past the sequential baseline, and appends the timings to
//! `BENCH_space_eval.json` (JSONL, same record shape as `BENCH_obs.json`)
//! to seed the perf trajectory.
//!
//! The wall-clock bound is chosen to hold even on a single-core host,
//! where the pool cannot help: the memo alone collapses the sweep onto a
//! few dozen operating points, so pooled+cache must beat the uncached
//! baseline regardless of parallelism. A `MARGIN` absorbs scheduler
//! noise on loaded machines.

use enprop_explore::{
    configurations, count_configurations, evaluate_space_with, EvalOptions, TypeSpace,
};
use enprop_obs::{append_bench_record, BenchRecord};
use enprop_workloads::Workload;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Best-of-n repetitions per variant.
const REPS: usize = 3;
/// Tolerated noise factor on the pooled+cache ≤ sequential bound.
const MARGIN: f64 = 1.2;

/// Best wall-clock milliseconds for a full sweep under `opts`.
fn best_ms(w: &Workload, types: &[TypeSpace], opts: EvalOptions) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let (evald, _) = evaluate_space_with(w, configurations(types), opts);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(evald.len(), count_configurations(types) as usize);
    }
    best
}

fn main() -> ExitCode {
    let types = [TypeSpace::a9(8), TypeSpace::k10(6)];
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let n = count_configurations(&types);
    let threads = enprop_explore::eval_threads();
    println!("perf-smoke: EP over {n} configurations, pool of {threads} thread(s)");

    let seq = best_ms(
        &w,
        &types,
        EvalOptions {
            threads: Some(1),
            cache: false,
        },
    );
    let pooled = best_ms(
        &w,
        &types,
        EvalOptions {
            threads: None,
            cache: false,
        },
    );
    let cached = best_ms(&w, &types, EvalOptions::default());
    println!("  sequential/uncached : {seq:>8.2} ms");
    println!(
        "  pooled/uncached     : {pooled:>8.2} ms ({:.2}x)",
        seq / pooled
    );
    println!(
        "  pooled + memoized   : {cached:>8.2} ms ({:.2}x)",
        seq / cached
    );

    let path = Path::new("BENCH_space_eval.json");
    // `seed` records the pool size: the sweep has no RNG, and the thread
    // count is the one knob that changes the timing's meaning.
    for (cmd, wall_ms) in [
        ("space_eval.seq1", seq),
        ("space_eval.pooled", pooled),
        ("space_eval.pooled_cached", cached),
    ] {
        let record = BenchRecord::new(cmd, wall_ms, threads as u64);
        if let Err(e) = append_bench_record(path, &record) {
            eprintln!("perf-smoke: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!("  appended 3 records to {}", path.display());

    if cached > seq * MARGIN {
        eprintln!(
            "perf-smoke: FAIL — pooled+memoized sweep ({cached:.2} ms) regressed past \
             sequential/uncached ({seq:.2} ms) x {MARGIN}"
        );
        return ExitCode::FAILURE;
    }
    println!("perf-smoke: OK (pooled+memoized <= sequential x {MARGIN})");
    ExitCode::SUCCESS
}
