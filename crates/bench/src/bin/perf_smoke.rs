//! `just perf-smoke`: a fast perf regression gate for the evaluation
//! pipeline. Runs a reduced configuration-space sweep (EP over ≤ 8 A9 +
//! ≤ 6 K10) three ways — sequential/uncached, pooled/uncached and
//! pooled+memoized — best-of-3 each, asserts the optimized path did not
//! regress past the sequential baseline, and appends the timings to
//! `BENCH_space_eval.json` (JSONL, same record shape as `BENCH_obs.json`)
//! to seed the perf trajectory.
//!
//! The wall-clock bound is chosen to hold even on a single-core host,
//! where the pool cannot help: the memo alone collapses the sweep onto a
//! few dozen operating points, so pooled+cache must beat the uncached
//! baseline regardless of parallelism. A `MARGIN` absorbs scheduler
//! noise on loaded machines.
//!
//! A second, mega-scale scenario covers the blind spot the small sweep
//! leaves: the first 10^6 configurations of a DALEK-style four-type
//! space, pooled/uncached (materializing) vs streaming/pruned
//! (`stream_pareto_front`, DESIGN.md §17). The streamed path must be at
//! least `STREAM_SPEEDUP`× faster — the win comes from SoA evaluation
//! and dominance pruning, not parallelism, so it too holds on one core.
//! Appends `space_eval.pooled_1m` and `space_eval.stream_pruned` rows.

use enprop_explore::{
    configurations, count_configurations, evaluate_space_with, stream_pareto_front, EvalOptions,
    StreamOptions, TypeSpace,
};
use enprop_obs::{append_bench_record, BenchRecord};
use enprop_workloads::Workload;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Best-of-n repetitions per variant.
const REPS: usize = 3;
/// Tolerated noise factor on the pooled+cache ≤ sequential bound.
const MARGIN: f64 = 1.2;
/// Mega-scale scenario size: enough configurations that materializing
/// the space visibly hurts, small enough to stay a smoke test.
const MEGA_CAP: u64 = 1_000_000;
/// Required speedup of streaming/pruned over pooled/uncached at
/// `MEGA_CAP` configurations (ISSUE satellite; DESIGN.md §17).
const STREAM_SPEEDUP: f64 = 2.0;

/// Best wall-clock milliseconds over `REPS` runs of `f`.
fn best_of(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best wall-clock milliseconds for a full sweep under `opts`.
fn best_ms(w: &Workload, types: &[TypeSpace], opts: EvalOptions) -> f64 {
    best_of(|| {
        let (evald, _) = evaluate_space_with(w, configurations(types), opts);
        assert_eq!(evald.len(), count_configurations(types) as usize);
    })
}

fn main() -> ExitCode {
    let types = [TypeSpace::a9(8), TypeSpace::k10(6)];
    let w = enprop_workloads::catalog::by_name("EP").expect("EP is in the catalog");
    let n = count_configurations(&types);
    let threads = enprop_explore::eval_threads();
    println!("perf-smoke: EP over {n} configurations, pool of {threads} thread(s)");

    let seq = best_ms(
        &w,
        &types,
        EvalOptions {
            threads: Some(1),
            cache: false,
        },
    );
    let pooled = best_ms(
        &w,
        &types,
        EvalOptions {
            threads: None,
            cache: false,
        },
    );
    let cached = best_ms(&w, &types, EvalOptions::default());
    println!("  sequential/uncached : {seq:>8.2} ms");
    println!(
        "  pooled/uncached     : {pooled:>8.2} ms ({:.2}x)",
        seq / pooled
    );
    println!(
        "  pooled + memoized   : {cached:>8.2} ms ({:.2}x)",
        seq / cached
    );

    // Mega-scale scenario: the first MEGA_CAP configurations of a
    // DALEK-style four-type space. The pooled path materializes every
    // EvaluatedConfig; the streamed path keeps only the frontier.
    let mega_types = [
        TypeSpace::a9(10),
        TypeSpace::k10(10),
        TypeSpace::pi4(16),
        TypeSpace::opi5(16),
    ];
    let mega_w =
        enprop_workloads::catalog::dalek("EP").expect("EP has a DALEK-extended profile set");
    let mega_total = count_configurations(&mega_types);
    println!("perf-smoke: EP/DALEK over {MEGA_CAP} of {mega_total} configurations");

    let pooled_1m = best_of(|| {
        let iter = configurations(&mega_types).take(MEGA_CAP as usize);
        let (evald, _) = evaluate_space_with(
            &mega_w,
            iter,
            EvalOptions {
                threads: None,
                cache: false,
            },
        );
        assert_eq!(evald.len(), MEGA_CAP as usize);
    });
    let mut mega_stats = None;
    let stream = best_of(|| {
        let (front, stats) = stream_pareto_front(
            &mega_w,
            &mega_types,
            StreamOptions {
                max_configs: Some(MEGA_CAP),
                ..StreamOptions::default()
            },
        );
        assert!(!front.is_empty());
        assert_eq!(stats.evaluated as u64 + stats.pruned, MEGA_CAP);
        mega_stats = Some(stats);
    });
    let mega_stats = mega_stats.expect("at least one streamed rep ran");
    println!(
        "  pooled/uncached     : {pooled_1m:>8.2} ms (materializes {MEGA_CAP} configs)"
    );
    println!(
        "  streaming + pruned  : {stream:>8.2} ms ({:.2}x, {:.1}% pruned, frontier {}, peak {} KiB)",
        pooled_1m / stream,
        100.0 * mega_stats.pruned as f64 / MEGA_CAP as f64,
        mega_stats.frontier_len,
        mega_stats.peak_buffer_bytes / 1024,
    );

    let path = Path::new("BENCH_space_eval.json");
    // `seed` records the pool size: the sweep has no RNG, and the thread
    // count is the one knob that changes the timing's meaning.
    for (cmd, wall_ms) in [
        ("space_eval.seq1", seq),
        ("space_eval.pooled", pooled),
        ("space_eval.pooled_cached", cached),
        ("space_eval.pooled_1m", pooled_1m),
        ("space_eval.stream_pruned", stream),
    ] {
        let record = BenchRecord::new(cmd, wall_ms, threads as u64);
        if let Err(e) = append_bench_record(path, &record) {
            eprintln!("perf-smoke: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!("  appended 5 records to {}", path.display());

    if cached > seq * MARGIN {
        eprintln!(
            "perf-smoke: FAIL — pooled+memoized sweep ({cached:.2} ms) regressed past \
             sequential/uncached ({seq:.2} ms) x {MARGIN}"
        );
        return ExitCode::FAILURE;
    }
    if stream * STREAM_SPEEDUP > pooled_1m {
        eprintln!(
            "perf-smoke: FAIL — streaming/pruned sweep ({stream:.2} ms) is not \
             {STREAM_SPEEDUP}x faster than pooled/uncached ({pooled_1m:.2} ms) \
             at {MEGA_CAP} configurations"
        );
        return ExitCode::FAILURE;
    }
    println!("perf-smoke: OK (pooled+memoized <= sequential x {MARGIN}; streaming >= {STREAM_SPEEDUP}x pooled at {MEGA_CAP})");
    ExitCode::SUCCESS
}
