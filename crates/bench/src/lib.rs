//! Shared fixtures for the benchmark harness: every bench regenerates one
//! of the paper's tables or figures, so the fixtures mirror the
//! experiment setups exactly (workloads, mixes, utilization grids).

use enprop_clustersim::ClusterSpec;
use enprop_workloads::{catalog, Workload};

/// All six paper workloads.
pub fn workloads() -> Vec<Workload> {
    catalog::all()
}

/// The Fig. 7/8 1 kW budget mixes.
pub fn budget_mixes() -> Vec<ClusterSpec> {
    enprop_explore::budget_mixes(1000.0, 4)
}

/// The Fig. 9–12 Pareto mixes (≤ 32 A9, ≤ 12 K10).
pub fn pareto_mixes() -> Vec<ClusterSpec> {
    [(32, 12), (25, 10), (25, 8), (25, 7), (25, 5)]
        .into_iter()
        .map(|(a, k)| ClusterSpec::a9_k10(a, k))
        .collect()
}

/// The utilization grid of the proportionality figures (10%..100%).
pub fn utilization_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// The denser grid of the response-time figures (20%..95%).
pub fn response_grid() -> Vec<f64> {
    (4..=19).map(|i| i as f64 / 20.0).collect()
}
