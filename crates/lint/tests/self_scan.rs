#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! The workspace must stay clean under its own lint pass: any PR that
//! introduces a determinism or numeric-hygiene violation (without a
//! justified waiver) fails this test even before the verify.sh gate runs.

use enprop_lint::{report, scan_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_clean() {
    let rep = scan_workspace(workspace_root()).expect("scan must not fail");
    assert!(
        rep.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report::render_text(&rep)
    );
}

#[test]
fn scan_covers_the_whole_workspace() {
    let rep = scan_workspace(workspace_root()).expect("scan must not fail");
    // The seed alone had 120 files; a collapse of the walker (e.g. an
    // over-eager exclusion) would show up as a drastic drop here.
    assert!(
        rep.files_scanned > 100,
        "only {} files scanned — walker lost the workspace",
        rep.files_scanned
    );
    // The waivers placed in this PR must be live: if refactoring drops the
    // waived sites to zero silently, the waiver comments have gone stale.
    assert!(rep.waived >= 1, "expected at least one live waiver");
}

#[test]
fn report_is_deterministic() {
    let a = scan_workspace(workspace_root()).expect("scan must not fail");
    let b = scan_workspace(workspace_root()).expect("scan must not fail");
    // Timing is the one non-deterministic field; pin it for the diff.
    assert_eq!(report::render_json(&a, 0), report::render_json(&b, 0));
}
