#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! The binary's contract with `scripts/verify.sh`: exit 0 on a clean tree,
//! 1 on findings (with machine-readable `--json` output), 2 on bad usage —
//! aligned with the `enprop` CLI's typed exit codes (DESIGN.md §9, §11).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_enprop-lint"))
}

fn fixture(tag: &str, violating: bool) -> PathBuf {
    let root = std::env::temp_dir().join(format!("enprop-lint-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/nodesim/src")).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    let src = if violating {
        format!("fn f() {{ let mut r = {}(); }}\n", "thread_rng")
    } else {
        "fn f() -> u64 { 42 }\n".to_string()
    };
    fs::write(root.join("crates/nodesim/src/lib.rs"), src).unwrap();
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture("clean", false);
    let out = bin().arg("--root").arg(&root).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn seeded_violation_exits_one_with_json() {
    let root = fixture("dirty", true);
    let out = bin().args(["--json", "--root"]).arg(&root).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"format\":\"enprop-lint-v2\""), "{stdout}");
    assert!(stdout.contains("\"scan_ms\":"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"unseeded-rng\""), "{stdout}");
    assert!(stdout.contains("\"path\":\"crates/nodesim/src/lib.rs\""), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn waivers_subcommand_lists_sites() {
    let root = fixture("waivers", false);
    fs::write(
        root.join("crates/nodesim/src/extra.rs"),
        "// enprop-lint: allow(unseeded-rng) -- fixture waiver for CLI test\n\
         fn g() { let mut r = thread_rng(); }\n",
    )
    .unwrap();
    let out = bin().args(["waivers", "--root"]).arg(&root).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let listing = String::from_utf8(out.stdout).unwrap();
    assert!(
        listing.contains("allow(unseeded-rng) [active] -- fixture waiver for CLI test"),
        "{listing}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn bad_usage_exits_two() {
    let out = bin().arg("--no-such-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = bin().args(["--explain", "no-such-rule"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn rule_docs_are_reachable() {
    let out = bin().arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8(out.stdout).unwrap();
    #[rustfmt::skip]
    let codes = [
        "D001", "D002", "D003", "D004",
        "N001", "N002", "N003", "N004",
        "U001", "U002", "U003", "U004",
        "C001", "C002",
        "W001", "W002",
    ];
    for code in codes {
        assert!(listing.contains(code), "missing {code} in --list-rules");
    }
    let out = bin().args(["--explain", "float-int-cast"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let page = String::from_utf8(out.stdout).unwrap();
    assert!(page.contains("N001") && page.contains("waiver"), "{page}");
    // Every rule id in the catalogue has a working --explain page, the
    // new U/C/W rules included.
    for rule in enprop_lint::RULES {
        let out = bin().args(["--explain", rule.id]).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "--explain {} failed", rule.id);
        let page = String::from_utf8(out.stdout).unwrap();
        assert!(page.contains(rule.code), "--explain {} lacks {}", rule.id, rule.code);
        assert!(!rule.rationale.is_empty());
    }
}
