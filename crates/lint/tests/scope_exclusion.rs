#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Regression tests for scanner scope: `enprop-lint` and `cargo clippy`
//! must agree on what is first-party code. Vendored dependency stubs and
//! build output must never produce hygiene findings, no matter what they
//! contain. One carve-out: `vendor/rayon` is walked for the
//! lock-discipline rules (C001/C002) — and *only* those rules apply there.

use enprop_lint::{collect_rs_files, scan_workspace};
use std::fs;
use std::path::PathBuf;

/// A violation that fires in any first-party crate (unseeded-rng is
/// workspace-scoped), assembled from pieces so the self-scan never sees
/// the forbidden call.
fn violating_source() -> String {
    format!("fn f() {{ let mut r = {}(); }}\n", "thread_rng")
}

/// A lock re-entry (C001) that the lock rules flag wherever they apply.
fn reentry_source() -> &'static str {
    "fn f(&self) { let g = self.inner.lock(); self.inner.lock().push(1); }\n"
}

/// Build a throwaway mini-workspace with violations planted inside and
/// outside the excluded directories.
fn build_fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("enprop-lint-{tag}-{}", std::process::id()));
    // Re-runs of the same test process reuse the path; start clean.
    let _ = fs::remove_dir_all(&root);
    for dir in [
        "vendor/rand/src",
        "vendor/rayon/src",
        "target/debug",
        "crates/nodesim/src",
        ".hidden",
    ] {
        fs::create_dir_all(root.join(dir)).unwrap();
    }
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(root.join("vendor/rand/src/lib.rs"), violating_source()).unwrap();
    // vendor/rayon gets both a hygiene violation (must stay silent there)
    // and a lock violation (must be reported from there).
    fs::write(
        root.join("vendor/rayon/src/lib.rs"),
        format!("{}{}", violating_source(), reentry_source()),
    )
    .unwrap();
    fs::write(root.join("target/debug/gen.rs"), violating_source()).unwrap();
    fs::write(root.join(".hidden/gen.rs"), violating_source()).unwrap();
    fs::write(root.join("crates/nodesim/src/lib.rs"), violating_source()).unwrap();
    root
}

#[test]
fn only_the_rayon_carveout_escapes_vendor_exclusion() {
    let root = build_fixture("excl");
    let files = collect_rs_files(&root).unwrap();
    assert!(
        files.iter().all(|p| {
            let s = p.to_string_lossy();
            (!s.contains("/vendor/") || s.contains("/vendor/rayon/"))
                && !s.contains("/target/")
                && !s.contains("/.hidden/")
        }),
        "excluded directory leaked into the scan set: {files:?}"
    );
    assert_eq!(
        files.len(),
        2,
        "the first-party file plus the rayon carve-out: {files:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn vendored_rayon_sees_lock_rules_and_nothing_else() {
    let root = build_fixture("find");
    let rep = scan_workspace(&root).unwrap();
    assert_eq!(rep.files_scanned, 2);
    // Exactly two findings: the planted first-party rng violation and the
    // planted vendored lock re-entry. The rng call *inside* vendor/rayon
    // stays silent — vendored code answers only to the lock rules.
    let hits: Vec<(&str, &str)> = rep
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.rule))
        .collect();
    assert_eq!(
        hits,
        [
            ("crates/nodesim/src/lib.rs", "unseeded-rng"),
            ("vendor/rayon/src/lib.rs", "lock-reenter"),
        ],
        "{hits:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn real_vendor_tree_is_scanned_only_through_the_carveout() {
    // Belt and braces: the actual vendored rand stub constructs RNGs and
    // would light up the pass if it were ever pulled into scope. Assert
    // the real workspace's scan set admits no vendor/ file outside
    // vendor/rayon, and no build output at all.
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap()
        .to_path_buf();
    let files = collect_rs_files(&ws).unwrap();
    assert!(!files.is_empty());
    assert!(files.iter().all(|p| {
        let s = p.to_string_lossy();
        !s.contains("/vendor/") || s.contains("/vendor/rayon/")
    }));
    assert!(files
        .iter()
        .all(|p| !p.to_string_lossy().contains("/target/")));
    // The carve-out itself is present: lock rules do cover vendored rayon.
    assert!(
        files
            .iter()
            .any(|p| p.to_string_lossy().contains("/vendor/rayon/")),
        "vendor/rayon missing from the scan set"
    );
}
