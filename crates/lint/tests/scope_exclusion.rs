#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Regression tests for scanner scope: `enprop-lint` and `cargo clippy`
//! must agree on what is first-party code. Vendored dependency stubs and
//! build output must never produce findings, no matter what they contain.

use enprop_lint::{collect_rs_files, scan_workspace};
use std::fs;
use std::path::PathBuf;

/// A violation that fires in any crate (unseeded-rng is workspace-scoped),
/// assembled from pieces so the self-scan never sees the forbidden call.
fn violating_source() -> String {
    format!("fn f() {{ let mut r = {}(); }}\n", "thread_rng")
}

/// Build a throwaway mini-workspace with violations planted inside and
/// outside the excluded directories.
fn build_fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("enprop-lint-{tag}-{}", std::process::id()));
    // Re-runs of the same test process reuse the path; start clean.
    let _ = fs::remove_dir_all(&root);
    for dir in [
        "vendor/rand/src",
        "target/debug",
        "crates/nodesim/src",
        ".hidden",
    ] {
        fs::create_dir_all(root.join(dir)).unwrap();
    }
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(root.join("vendor/rand/src/lib.rs"), violating_source()).unwrap();
    fs::write(root.join("target/debug/gen.rs"), violating_source()).unwrap();
    fs::write(root.join(".hidden/gen.rs"), violating_source()).unwrap();
    fs::write(root.join("crates/nodesim/src/lib.rs"), violating_source()).unwrap();
    root
}

#[test]
fn vendor_and_target_are_never_scanned() {
    let root = build_fixture("excl");
    let files = collect_rs_files(&root).unwrap();
    assert!(
        files.iter().all(|p| {
            let s = p.to_string_lossy();
            !s.contains("/vendor/") && !s.contains("/target/") && !s.contains("/.hidden/")
        }),
        "excluded directory leaked into the scan set: {files:?}"
    );
    assert_eq!(files.len(), 1, "only the first-party file should remain");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn findings_come_only_from_first_party_code() {
    let root = build_fixture("find");
    let rep = scan_workspace(&root).unwrap();
    assert_eq!(rep.files_scanned, 1);
    assert_eq!(rep.findings.len(), 1, "exactly the planted violation");
    assert_eq!(rep.findings[0].path, "crates/nodesim/src/lib.rs");
    assert_eq!(rep.findings[0].rule, "unseeded-rng");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn real_vendor_tree_would_violate_if_scanned() {
    // Belt and braces: the actual vendored rand stub constructs RNGs and
    // would light up the pass if it were ever pulled into scope. Assert
    // the real workspace's scan set excludes every vendor/ file.
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap()
        .to_path_buf();
    let files = collect_rs_files(&ws).unwrap();
    assert!(!files.is_empty());
    assert!(files
        .iter()
        .all(|p| !p.to_string_lossy().contains("/vendor/")));
    assert!(files
        .iter()
        .all(|p| !p.to_string_lossy().contains("/target/")));
}
