#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Property tests for the token-tree builder: `flatten(build(toks))` must
//! reproduce the lexed token stream exactly — for balanced source, for
//! arbitrarily unbalanced delimiter soup, and for everything in between.
//! A linter that drops or reorders tokens while grouping would silently
//! blind every structural rule downstream of it.

use enprop_lint::lexer::lex;
use enprop_lint::tree::{build, flatten, Tree};
use proptest::collection::vec;
use proptest::prelude::*;

/// One vocabulary item of generated pseudo-Rust: identifiers (suffixed and
/// not), literals, keywords, operators — and every delimiter, so random
/// streams are usually unbalanced in interesting ways.
fn vocab() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn"),
        Just("let"),
        Just("if"),
        Just("match"),
        Just("return"),
        Just("energy_j"),
        Just("power_w"),
        Just("dt_s"),
        Just("x"),
        Just("self"),
        Just("1.5"),
        Just("42"),
        Just("\"str\""),
        Just("="),
        Just("+"),
        Just("*"),
        Just("/"),
        Just("."),
        Just(";"),
        Just(","),
        Just("::"),
        Just("->"),
        Just("=="),
        Just("("),
        Just(")"),
        Just("["),
        Just("]"),
        Just("{"),
        Just("}"),
    ]
}

/// Join generated words into source text. Newlines every few words keep
/// line/col bookkeeping honest too.
fn render(words: &[&str]) -> String {
    let mut src = String::new();
    for (i, w) in words.iter().enumerate() {
        src.push_str(w);
        src.push(if i % 7 == 6 { '\n' } else { ' ' });
    }
    src
}

fn assert_roundtrip(src: &str) -> Result<(), TestCaseError> {
    let toks = lex(src).tokens;
    let trees = build(&toks);
    let flat = flatten(&trees);
    prop_assert_eq!(toks.len(), flat.len(), "token count changed for {:?}", src);
    for (a, b) in toks.iter().zip(flat.iter()) {
        prop_assert_eq!(
            (a.kind, &a.text, a.lo, a.hi, a.line, a.col),
            (b.kind, &b.text, b.lo, b.hi, b.line, b.col),
            "token diverged in {:?}",
            src
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-trip over arbitrary token soup, balanced or not.
    #[test]
    fn flatten_build_roundtrips(words in vec(vocab(), 0..60)) {
        assert_roundtrip(&render(&words))?;
    }

    /// Same property restricted to streams with delimiters stripped:
    /// degenerate flat input must round-trip leaf-for-leaf.
    #[test]
    fn delimiter_free_streams_are_all_leaves(words in vec(vocab(), 0..40)) {
        let flatwords: Vec<&str> = words
            .iter()
            .copied()
            .filter(|w| !matches!(*w, "(" | ")" | "[" | "]" | "{" | "}"))
            .collect();
        let src = render(&flatwords);
        let toks = lex(&src).tokens;
        let trees = build(&toks);
        prop_assert_eq!(trees.len(), toks.len());
        prop_assert!(trees.iter().all(|t| matches!(t, Tree::Leaf(_))));
        assert_roundtrip(&src)?;
    }
}

/// Structural sanity on top of the round-trip: every group in a built tree
/// carries a matching delimiter class between its open token and (when
/// present) its close token.
#[test]
fn group_delimiters_are_self_consistent() {
    fn check(trees: &[Tree]) {
        for t in trees {
            if let Tree::Group(g) = t {
                let want_open = match g.delim {
                    enprop_lint::tree::Delim::Paren => "(",
                    enprop_lint::tree::Delim::Bracket => "[",
                    enprop_lint::tree::Delim::Brace => "{",
                };
                assert_eq!(g.open.text, want_open);
                if let Some(c) = &g.close {
                    let want_close = match g.delim {
                        enprop_lint::tree::Delim::Paren => ")",
                        enprop_lint::tree::Delim::Bracket => "]",
                        enprop_lint::tree::Delim::Brace => "}",
                    };
                    assert_eq!(c.text, want_close);
                }
                check(&g.children);
            }
        }
    }
    let src = "fn f(a: u8) { g([1, 2], (3, [4])); } ) ] unclosed ( [ {";
    check(&build(&lex(src).tokens));
}
