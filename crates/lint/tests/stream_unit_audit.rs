#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! U-rule audit of the streaming evaluator (DESIGN.md §17): the new
//! `_w`/`_j`/`_ops_s`-suffixed identifiers introduced by the mega-scale
//! path must parse to the dimensions they claim, and the files carrying
//! them must stay clean under the unit-coherence pass *without waivers*
//! — the SoA hot loops are exactly where a silently-wrong unit would do
//! the most damage.

use enprop_lint::units::{dim_of_ident, Dim};
use enprop_lint::{lint_source, FileReport};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

fn lint_file(rel: &str) -> FileReport {
    let src = std::fs::read_to_string(workspace_root().join(rel)).unwrap();
    lint_source(rel, &src)
}

#[test]
fn stream_identifiers_claim_the_dimensions_they_mean() {
    const ENERGY: Dim = Dim { j: 1, s: 0, ops: 0, b: 0 };
    const POWER: Dim = Dim { j: 1, s: -1, ops: 0, b: 0 };
    const TIME: Dim = Dim { j: 0, s: 1, ops: 0, b: 0 };
    const RATE: Dim = Dim { j: 0, s: -1, ops: 1, b: 0 };
    const PER_OP_ENERGY: Dim = Dim { j: 1, s: 0, ops: -1, b: 0 };
    const BYTES: Dim = Dim { j: 0, s: 0, ops: 0, b: 1 };
    // (identifier introduced by the §17 path, dimension it must claim)
    let table = [
        ("lb_energy_j", ENERGY),
        ("j_per_op", PER_OP_ENERGY),
        ("min_j_per_op", PER_OP_ENERGY),
        ("cluster_rate_ops_s", RATE),
        ("count_rate_ops_s", RATE),
        ("rate_ops_s", RATE),
        ("job_time_s", TIME),
        ("fleet_idle_w", POWER),
        ("fleet_switch_w", POWER),
        ("peak_buffer_bytes", BYTES),
    ];
    for (ident, want) in table {
        assert_eq!(
            dim_of_ident(ident),
            Some(want),
            "`{ident}` must claim `{want}` through the suffix grammar"
        );
    }
}

#[test]
fn streaming_path_is_unit_clean_without_waivers() {
    for rel in [
        "crates/explore/src/stream.rs",
        "crates/explore/src/space.rs",
        "crates/explore/src/pareto.rs",
        "crates/explore/src/cache.rs",
        "crates/bench/src/bin/perf_smoke.rs",
    ] {
        let rep = lint_file(rel);
        let unit_findings: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.code.starts_with('U'))
            .collect();
        assert!(
            unit_findings.is_empty(),
            "{rel} has U-rule findings: {unit_findings:?}"
        );
        // Waivers are recorded by rule *name*; all four U rules are
        // `unit-*` (DESIGN.md §15).
        let unit_waivers: Vec<_> = rep
            .waivers
            .iter()
            .filter(|w| w.rule.starts_with("unit-") || w.rule.starts_with('U'))
            .collect();
        assert!(
            unit_waivers.is_empty(),
            "{rel} hides unit findings behind waivers: {unit_waivers:?}"
        );
    }
}
