#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Mutation harness for the U-rules: seed realistic, dimensionally *clean*
//! energy-accounting fragments, then systematically inject the two bug
//! classes the rules exist to catch —
//!
//! * **suffix swaps**: one `_j` identifier becomes `_w` (or vice versa),
//!   the classic joules-for-watts confusion;
//! * **dropped conversions**: a `* dt_s` / `/ dt_s` factor disappears, the
//!   classic power-summed-as-energy bug;
//!
//! and assert the linter flags **every** mutant. Detection below 100% on
//! these shapes means the inference got weaker; extend the fragments when
//! new accounting idioms enter the model crates.

use enprop_lint::lint_source;

/// A model-crate path: the U-rules apply here.
const MODEL: &str = "crates/core/src/fixture.rs";

/// Clean fragments modeled on the workspace's real accounting code
/// (controller `advance`, metrics windows, eval-cache composition). Each
/// must lint clean before mutation, so every mutant's findings are caused
/// by the mutation alone.
const FRAGMENTS: &[&str] = &[
    // serve::controller::advance — the energy integration step.
    "fn f() { let energy_j = busy_power_w * dt_s; }",
    // Average power over a window.
    "fn f() { let avg_power_w = total_j / dt_s; }",
    // Accumulation into a suffixed field.
    "fn f() { acc.win_energy_j += node_power_w * dt_s; }",
    // Energy budget guard.
    "fn f() { if used_j > budget_j { trip() } }",
    // Rate derivation (ops axis).
    "fn f() { let rate_ops_s = done_ops / dt_s; }",
    // Energy from per-op cost.
    "fn f() { let job_j = cost_j_per_op * total_ops; }",
];

fn finding_codes(src: &str) -> Vec<&'static str> {
    lint_source(MODEL, src).findings.iter().map(|f| f.code).collect()
}

/// Every mutant of `src` where exactly one occurrence of `from` is
/// replaced by `to`.
fn swap_mutants(src: &str, from: &str, to: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(at) = src[start..].find(from) {
        let at = start + at;
        // Whole-suffix occurrences only: the next char must not extend the
        // identifier (`_j` inside `_j_per_op` is a different suffix).
        let next = src[at + from.len()..].chars().next();
        if !next.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            let mut m = String::with_capacity(src.len());
            m.push_str(&src[..at]);
            m.push_str(to);
            m.push_str(&src[at + from.len()..]);
            out.push(m);
        }
        start = at + from.len();
    }
    out
}

/// Every mutant of `src` with one ` * dt_s` or ` / dt_s` factor deleted.
fn drop_conversion_mutants(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for needle in [" * dt_s", " / dt_s"] {
        let mut start = 0;
        while let Some(at) = src[start..].find(needle) {
            let at = start + at;
            let mut m = String::with_capacity(src.len());
            m.push_str(&src[..at]);
            m.push_str(&src[at + needle.len()..]);
            out.push(m);
            start = at + needle.len();
        }
    }
    out
}

#[test]
fn fragments_are_clean_before_mutation() {
    for src in FRAGMENTS {
        assert_eq!(finding_codes(src), Vec::<&str>::new(), "fragment {src:?}");
    }
}

#[test]
fn suffix_swap_mutants_are_all_detected() {
    let mut mutants = 0;
    for src in FRAGMENTS {
        for m in swap_mutants(src, "_j", "_w")
            .into_iter()
            .chain(swap_mutants(src, "_w", "_j"))
        {
            let codes = finding_codes(&m);
            assert!(
                codes.iter().any(|c| c.starts_with('U')),
                "undetected suffix-swap mutant {m:?} (codes: {codes:?})"
            );
            mutants += 1;
        }
    }
    // The census below is load-bearing: a refactor that silently stops
    // generating mutants would pass the loop vacuously.
    assert_eq!(mutants, 9, "suffix-swap mutant census changed");
}

#[test]
fn dropped_conversion_mutants_are_all_detected() {
    let mut mutants = 0;
    for src in FRAGMENTS {
        for m in drop_conversion_mutants(src) {
            let codes = finding_codes(&m);
            assert!(
                codes.iter().any(|c| c.starts_with('U')),
                "undetected dropped-conversion mutant {m:?} (codes: {codes:?})"
            );
            mutants += 1;
        }
    }
    assert_eq!(mutants, 4, "dropped-conversion mutant census changed");
}

/// The harness itself must produce real mutants: spot-check one of each
/// class end to end, including which rule catches it.
#[test]
fn harness_spot_checks() {
    // `let energy_j = busy_power_w * dt_s;` with `_j` → `_w`: the binding
    // now claims W but receives J.
    let m = &swap_mutants(FRAGMENTS[0], "_j", "_w")[0];
    assert_eq!(finding_codes(m), ["U002"], "{m:?}");
    // Same fragment with ` * dt_s` dropped: W flows into a J binding.
    let m = &drop_conversion_mutants(FRAGMENTS[0])[0];
    assert_eq!(finding_codes(m), ["U002"], "{m:?}");
    // The guard fragment mutates into a cross-dimension comparison.
    let m = &swap_mutants(FRAGMENTS[3], "_j", "_w")[0];
    assert_eq!(finding_codes(m), ["U003"], "{m:?}");
}
