#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Per-rule fixtures: every rule gets a positive case (fires), a negative
//! case (stays silent — wrong construct or out-of-scope crate), and a
//! waiver case (fires, then is suppressed by a justified waiver).
//!
//! Fixtures are inline string literals on purpose: the workspace self-scan
//! lexes this very file, and string literals are opaque to the rules, so
//! the violations spelled out here can never leak into the self-scan.

use enprop_lint::lint_source;

/// Paths used to pin each scope: `SIM` is a sim crate, `MODEL` a model
/// crate, `OUT` a crate where neither D- nor N-scoped rules apply.
const SIM: &str = "crates/nodesim/src/fixture.rs";
const MODEL: &str = "crates/core/src/fixture.rs";
const OUT: &str = "crates/cli/src/fixture.rs";

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).findings.iter().map(|f| f.rule).collect()
}

fn waived_count(path: &str, src: &str) -> (usize, usize) {
    let rep = lint_source(path, src);
    (rep.findings.len(), rep.waived)
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_positive() {
    let src = "fn t() -> f64 { let s = Instant::now(); 0.0 }";
    assert_eq!(rules_hit(SIM, src), ["wall-clock"]);
    let src = "use std::time::SystemTime;";
    assert_eq!(rules_hit(SIM, src), ["wall-clock"]);
}

#[test]
fn wall_clock_negative() {
    // Out-of-scope crate: the CLI may time itself.
    let src = "fn t() -> f64 { let s = Instant::now(); 0.0 }";
    assert!(rules_hit(OUT, src).is_empty());
    // `Instant` as a type name alone (struct field) does not fire.
    let src = "struct Timer { start: Instant }";
    assert!(rules_hit(SIM, src).is_empty());
    // The forbidden name inside a string or comment is invisible.
    let src = "// Instant::now() is banned\nfn f() { let s = \"Instant::now()\"; }";
    assert!(rules_hit(SIM, src).is_empty());
}

#[test]
fn wall_clock_waiver() {
    let src = "fn t() {\n    // enprop-lint: allow(wall-clock) -- self-profiler measures host time by design\n    let s = Instant::now();\n}";
    assert_eq!(waived_count(SIM, src), (0, 1));
}

// ------------------------------------------------------------------ map-iter

#[test]
fn map_iter_positive() {
    let src = "use std::collections::HashMap;";
    assert_eq!(rules_hit(SIM, src), ["map-iter"]);
    let src = "fn f(s: HashSet<u64>) {}";
    assert_eq!(rules_hit(SIM, src), ["map-iter"]);
}

#[test]
fn map_iter_negative() {
    let src = "use std::collections::BTreeMap;\nfn f(s: BTreeSet<u64>) {}";
    assert!(rules_hit(SIM, src).is_empty());
    let src = "use std::collections::HashMap;";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn map_iter_waiver() {
    let src = "// enprop-lint: allow(map-iter) -- keys are drained into a sorted Vec before any iteration\nuse std::collections::HashMap;";
    assert_eq!(waived_count(SIM, src), (0, 1));
}

// ------------------------------------------------------------- ambient-state

#[test]
fn ambient_state_positive() {
    let src = "static mut TICKS: u64 = 0;";
    assert_eq!(rules_hit(SIM, src), ["ambient-state"]);
    let src = "thread_local! { static SCRATCH: RefCell<Vec<f64>> = RefCell::new(Vec::new()); }";
    assert_eq!(rules_hit(SIM, src), ["ambient-state"]);
}

#[test]
fn ambient_state_negative() {
    // Immutable statics and `&'static` lifetimes are fine.
    let src = "static NAMES: [&'static str; 2] = [\"a\", \"b\"];";
    assert!(rules_hit(SIM, src).is_empty());
    let src = "static mut TICKS: u64 = 0;";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn ambient_state_waiver() {
    let src = "// enprop-lint: allow(ambient-state) -- write-once cache installed before any sim runs\nstatic mut TICKS: u64 = 0;";
    assert_eq!(waived_count(SIM, src), (0, 1));
}

// -------------------------------------------------------------- unseeded-rng

#[test]
fn unseeded_rng_positive() {
    // Workspace-scoped: fires even outside sim/model crates.
    let src = "fn f() { let mut r = StdRng::from_entropy(); }";
    assert_eq!(rules_hit(OUT, src), ["unseeded-rng"]);
    let src = "fn f() { let mut r = thread_rng(); }";
    assert_eq!(rules_hit("src/lib.rs", src), ["unseeded-rng"]);
    let src = "use rand::rngs::OsRng;";
    assert_eq!(rules_hit(SIM, src), ["unseeded-rng"]);
}

#[test]
fn unseeded_rng_negative() {
    let src = "fn f(seed: u64) { let mut r = StdRng::seed_from_u64(seed); }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn unseeded_rng_waiver() {
    let src = "fn f() {\n    // enprop-lint: allow(unseeded-rng) -- interactive demo tool, results are not recorded\n    let mut r = thread_rng();\n}";
    assert_eq!(waived_count(OUT, src), (0, 1));
}

// ------------------------------------------------------------ float-int-cast

#[test]
fn float_int_cast_positive() {
    // Float-method call chain.
    let src = "fn f(h: f64) -> usize { h.floor() as usize }";
    assert_eq!(rules_hit(MODEL, src), ["float-int-cast"]);
    // Float literal.
    let src = "fn f() -> u32 { 1.5 as u32 }";
    assert_eq!(rules_hit(MODEL, src), ["float-int-cast"]);
    // Parenthesized float expression.
    let src = "fn f(x: u64) -> u64 { (x as f64 * 0.5) as u64 }";
    assert_eq!(rules_hit(MODEL, src), ["float-int-cast"]);
    // Double cast through f64.
    let src = "fn f(x: u64) -> usize { x as f64 as usize }";
    assert_eq!(rules_hit(MODEL, src), ["float-int-cast"]);
}

#[test]
fn float_int_cast_negative() {
    // int→float widening and int→int casts are not this rule's business.
    let src = "fn f(n: usize) -> f64 { n as f64 }";
    assert!(rules_hit(MODEL, src).is_empty());
    let src = "fn f(n: u64) -> u16 { n as u16 }";
    assert!(rules_hit(MODEL, src).is_empty());
    // A call that is not provably float-valued stays silent (lexical rule).
    let src = "fn f(v: &[u64]) -> u32 { v.len() as u32 }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Out of scope.
    let src = "fn f(h: f64) -> usize { h.floor() as usize }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn float_int_cast_waiver() {
    let src = "fn f(h: f64) -> usize {\n    // enprop-lint: allow(float-int-cast) -- h is clamped to [0, len-1] above\n    h.floor() as usize\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// ------------------------------------------------------------------ f32-math

#[test]
fn f32_math_positive() {
    let src = "fn f(p: f32) -> f32 { p }";
    assert_eq!(rules_hit(MODEL, src), ["f32-math", "f32-math"]);
    let src = "fn f() -> f64 { 1.5f32 as f64 }";
    assert_eq!(rules_hit(MODEL, src), ["f32-math"]);
}

#[test]
fn f32_math_negative() {
    let src = "fn f(p: f64) -> f64 { p * 1.5 }";
    assert!(rules_hit(MODEL, src).is_empty());
    let src = "fn f(p: f32) -> f32 { p }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn f32_math_waiver() {
    let src = "// enprop-lint: allow(f32-math) -- GPU interop buffer, converted to f64 at the boundary\nfn f(p: f32) {}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// ------------------------------------------------------------------- nan-ord

#[test]
fn nan_ord_positive() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert_eq!(rules_hit(OUT, src), ["nan-ord"]);
    // Function reference passed to a sort.
    let src = "fn f(v: &mut [f64]) { v.sort_by(f64::partial_cmp); }";
    assert_eq!(rules_hit(OUT, src), ["nan-ord"]);
}

#[test]
fn nan_ord_negative() {
    let src = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }";
    assert!(rules_hit(OUT, src).is_empty());
    // A PartialOrd impl defines partial_cmp; that is not a call site.
    let src = "impl PartialOrd for P { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.t.total_cmp(&o.t)) } }";
    assert!(rules_hit(SIM, src).is_empty());
}

#[test]
fn nan_ord_waiver() {
    let src = "fn f(v: &mut Vec<f64>) {\n    // enprop-lint: allow(nan-ord) -- inputs proven finite by the validator above\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
    assert_eq!(waived_count(OUT, src), (0, 1));
}

// ------------------------------------------------------------------ float-eq

#[test]
fn float_eq_positive() {
    let src = "fn f(x: f64) -> bool { x == 1.5 }";
    assert_eq!(rules_hit(MODEL, src), ["float-eq"]);
    let src = "fn f(x: f64) -> bool { x != 0.25 }";
    assert_eq!(rules_hit(SIM, src), ["float-eq"]);
    let src = "fn f(x: f64) -> bool { 2.5 == x }";
    assert_eq!(rules_hit(MODEL, src), ["float-eq"]);
}

#[test]
fn float_eq_negative() {
    // Literal-zero sentinels are exempt by design.
    let src = "fn f(x: f64) -> bool { x == 0.0 }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Ordering comparisons are fine.
    let src = "fn f(x: f64) -> bool { x <= 1.5 && x >= 0.5 }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Integer equality is fine.
    let src = "fn f(x: u64) -> bool { x == 15 }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Out of scope.
    let src = "fn f(x: f64) -> bool { x == 1.5 }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn float_eq_waiver() {
    let src = "fn f(x: f64) -> bool {\n    // enprop-lint: allow(float-eq) -- 1.5 is exactly representable and set by the same code path\n    x == 1.5\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// ------------------------------------------------------------- waiver-syntax

#[test]
fn waiver_syntax_positive() {
    // Unknown rule id.
    let src = "// enprop-lint: allow(no-such-rule) -- whatever\nfn f() {}";
    assert_eq!(rules_hit(OUT, src), ["waiver-syntax"]);
    // Missing reason.
    let src = "// enprop-lint: allow(wall-clock)\nfn f() {}";
    assert_eq!(rules_hit(OUT, src), ["waiver-syntax"]);
    // Not an allow(...) directive at all.
    let src = "// enprop-lint: disable everything\nfn f() {}";
    assert_eq!(rules_hit(OUT, src), ["waiver-syntax"]);
}

#[test]
fn waiver_syntax_negative() {
    // A well-formed waiver is syntactically fine, but if nothing fires
    // under it the stale-waiver pass (W002) names it dead weight.
    let src = "// enprop-lint: allow(wall-clock) -- documented example\nfn f() {}";
    let rep = lint_source(OUT, src);
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(rep.findings[0].rule, "stale-waiver");
    assert_eq!(rep.waived, 0);
    // Ordinary comments never parse as waivers.
    let src = "// the linter (see crates/lint) checks this file\nfn f() {}";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn waiver_only_suppresses_its_own_rule_and_line() {
    // A wall-clock waiver does not silence an unseeded-rng finding — and
    // having suppressed nothing, it is itself flagged stale.
    let src = "fn f() {\n    // enprop-lint: allow(wall-clock) -- wrong rule on purpose\n    let mut r = thread_rng();\n}";
    let mut hit = rules_hit(SIM, src);
    hit.sort_unstable();
    assert_eq!(hit, ["stale-waiver", "unseeded-rng"]);
    // A waiver two lines above the violation is out of range.
    let src = "fn f() {\n    // enprop-lint: allow(unseeded-rng) -- too far away\n\n    let mut r = thread_rng();\n}";
    let mut hit = rules_hit(SIM, src);
    hit.sort_unstable();
    assert_eq!(hit, ["stale-waiver", "unseeded-rng"]);
}

// ------------------------------------------------------------------ unit-add

#[test]
fn unit_add_positive() {
    let src = "fn f() { let x = energy_j + idle_w; }";
    assert_eq!(rules_hit(MODEL, src), ["unit-add"]);
    // Fires in sim crates too (SimOrModel scope), and on subtraction.
    let src = "fn f() { let x = budget_j - drain_w; }";
    assert_eq!(rules_hit(SIM, src), ["unit-add"]);
}

#[test]
fn unit_add_negative() {
    // Like dimensions add fine.
    let src = "fn f() { let x = busy_j + idle_j; }";
    assert!(rules_hit(MODEL, src).is_empty());
    // An unsuffixed operand unifies with anything (charitable inference).
    let src = "fn f() { let x = energy_j + overhead; }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Out of scope.
    let src = "fn f() { let x = energy_j + idle_w; }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn unit_add_waiver() {
    let src = "fn f() {\n    // enprop-lint: allow(unit-add) -- fixture: deliberate unlike-dimension sum\n    let x = energy_j + idle_w;\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// --------------------------------------------------------------- unit-assign

#[test]
fn unit_assign_positive() {
    let src = "fn f() { let dt_s = power_w; }";
    assert_eq!(rules_hit(MODEL, src), ["unit-assign"]);
    // Compound assignment into a suffixed field.
    let src = "fn f() { n.energy_j += busy_power_w; }";
    assert_eq!(rules_hit(SIM, src), ["unit-assign"]);
}

#[test]
fn unit_assign_negative() {
    // Matching dimensions, including through arithmetic.
    let src = "fn f() { let energy_j = busy_power_w * dt_s; }";
    assert!(rules_hit(MODEL, src).is_empty());
    // `*=` rescales by design and is exempt.
    let src = "fn f() { total_j *= derate_frac; }";
    assert!(rules_hit(MODEL, src).is_empty());
    let src = "fn f() { let dt_s = power_w; }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn unit_assign_waiver() {
    let src = "fn f() {\n    // enprop-lint: allow(unit-assign) -- fixture: the op is defined as one watt-step here\n    let dt_s = power_w;\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// ------------------------------------------------------------------ unit-cmp

#[test]
fn unit_cmp_positive() {
    let src = "fn f() { if energy_j > idle_w { g() } }";
    assert_eq!(rules_hit(MODEL, src), ["unit-cmp"]);
    // min/max count as comparisons.
    let src = "fn f() { let x = peak_w.max(floor_j); }";
    assert_eq!(rules_hit(SIM, src), ["unit-cmp"]);
}

#[test]
fn unit_cmp_negative() {
    let src = "fn f() { if busy_j > idle_j { g() } }";
    assert!(rules_hit(MODEL, src).is_empty());
    // One unknown side unifies.
    let src = "fn f() { if energy_j > threshold { g() } }";
    assert!(rules_hit(MODEL, src).is_empty());
    let src = "fn f() { if energy_j > idle_w { g() } }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn unit_cmp_waiver() {
    let src = "fn f() {\n    // enprop-lint: allow(unit-cmp) -- fixture: threshold encodes J-per-1s window\n    if energy_j > idle_w { g() }\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// --------------------------------------------------------------- unit-opaque

#[test]
fn unit_opaque_positive() {
    // A suffixed binding built from a product of dimensionless unknowns
    // claims a unit inference cannot verify.
    let src = "fn f() { let energy_j = p * dt; }";
    assert_eq!(rules_hit(MODEL, src), ["unit-opaque"]);
    // Even one unknown factor voids the product's dimension.
    let src = "fn f() { let energy_j = p_w * dt; }";
    assert_eq!(rules_hit(MODEL, src), ["unit-opaque"]);
}

#[test]
fn unit_opaque_negative() {
    // Fully suffixed factors let inference verify the claim (U002 would
    // fire instead if they multiplied out to the wrong dimension).
    let src = "fn f() { let energy_j = p_w * dt_s; }";
    assert!(rules_hit(MODEL, src).is_empty());
    // Pure literal scaling adopts the context's dimension silently.
    let src = "fn f() { let cap_bytes = 256.0 * 1024.0; }";
    assert!(rules_hit(MODEL, src).is_empty());
    let src = "fn f() { let energy_j = p * dt; }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn unit_opaque_waiver() {
    let src = "fn f() {\n    // enprop-lint: allow(unit-opaque) -- fixture: p is W and dt is s by construction above\n    let energy_j = p * dt;\n}";
    assert_eq!(waived_count(MODEL, src), (0, 1));
}

// --------------------------------------------------------------- lock-reenter

/// A path inside the lock-rule scope (vendored rayon, obs, the eval cache).
const LOCKS: &str = "vendor/rayon/src/fixture.rs";

#[test]
fn lock_reenter_positive() {
    let src = "fn f(&self) { let g = self.inner.lock(); self.inner.lock().push(1); }";
    assert_eq!(rules_hit(LOCKS, src), ["lock-reenter"]);
}

#[test]
fn lock_reenter_negative() {
    // Dropping the guard first is the sanctioned shape.
    let src = "fn f(&self) { let g = self.inner.lock(); drop(g); self.inner.lock().push(1); }";
    assert!(rules_hit(LOCKS, src).is_empty());
    // Lock rules are scoped: the same code elsewhere is not checked.
    let src = "fn f(&self) { let g = self.inner.lock(); self.inner.lock().push(1); }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn lock_reenter_waiver() {
    let src = "fn f(&self) {\n    let g = self.inner.lock();\n    // enprop-lint: allow(lock-reenter) -- fixture: guard provably dropped on this branch\n    self.inner.lock().push(1);\n}";
    assert_eq!(waived_count(LOCKS, src), (0, 1));
}

// ----------------------------------------------------------------- lock-order

#[test]
fn lock_order_positive() {
    let src = "fn f(&self) { \
                 { let a = self.a.lock(); let b = self.b.lock(); } \
                 { let b = self.b.lock(); let a = self.a.lock(); } \
               }";
    assert_eq!(rules_hit(LOCKS, src), ["lock-order"]);
}

#[test]
fn lock_order_negative() {
    let src = "fn f(&self) { \
                 { let a = self.a.lock(); let b = self.b.lock(); } \
                 { let a = self.a.lock(); let b = self.b.lock(); } \
               }";
    assert!(rules_hit(LOCKS, src).is_empty());
    let src = "fn f(&self) { \
                 { let a = self.a.lock(); let b = self.b.lock(); } \
                 { let b = self.b.lock(); let a = self.a.lock(); } \
               }";
    assert!(rules_hit(OUT, src).is_empty());
}

#[test]
fn lock_order_waiver() {
    let src = "fn f(&self) {\n    { let a = self.a.lock(); let b = self.b.lock(); }\n    // enprop-lint: allow(lock-order) -- fixture: second block runs only after the pool quiesces\n    { let b = self.b.lock(); let a = self.a.lock(); }\n}";
    assert_eq!(waived_count(LOCKS, src), (0, 1));
}

// --------------------------------------------------------------- stale-waiver

#[test]
fn stale_waiver_positive() {
    let src = "// enprop-lint: allow(map-iter) -- the HashMap this excused is long gone\nfn f() {}";
    let rep = lint_source(SIM, src);
    assert_eq!(rep.findings.len(), 1);
    let f = &rep.findings[0];
    assert_eq!((f.rule, f.code), ("stale-waiver", "W002"));
    // W002 points at the waiver comment itself and quotes its reason.
    assert_eq!(f.line, 1);
    assert!(f.message.contains("map-iter"), "{}", f.message);
    assert!(f.message.contains("long gone"), "{}", f.message);
}

#[test]
fn stale_waiver_negative() {
    // A waiver that earns its keep is not stale.
    let src = "// enprop-lint: allow(map-iter) -- keys drained into a sorted Vec\nuse std::collections::HashMap;";
    assert_eq!(waived_count(SIM, src), (0, 1));
    // Malformed waivers are W001's business, never W002's.
    let src = "// enprop-lint: allow(no-such-rule) -- whatever\nfn f() {}";
    assert_eq!(rules_hit(SIM, src), ["waiver-syntax"]);
}

#[test]
fn stale_waiver_waiver() {
    // The escape hatch: a stale-waiver waiver keeps a conditional waiver
    // alive (e.g. one that only suppresses under a feature flag).
    let src = "// enprop-lint: allow(stale-waiver) -- fixture: inner waiver fires only under feature X\n// enprop-lint: allow(wall-clock) -- profiling path, compiled out by default\nfn f() {}";
    assert_eq!(waived_count(SIM, src), (0, 1));
}

#[test]
fn waiver_records_expose_usage() {
    let src = "// enprop-lint: allow(map-iter) -- keys drained into a sorted Vec\nuse std::collections::HashMap;\n// enprop-lint: allow(wall-clock) -- nothing under this one\nfn f() {}";
    let rep = lint_source(SIM, src);
    let used: Vec<(String, bool)> = rep
        .waivers
        .iter()
        .map(|w| (w.rule.clone(), w.used))
        .collect();
    assert_eq!(
        used,
        [("map-iter".to_string(), true), ("wall-clock".to_string(), false)]
    );
}

// -------------------------------------------------------- cross-rule behavior

#[test]
fn findings_carry_positions_and_codes() {
    let src = "fn t() {\n    let s = Instant::now();\n}";
    let rep = lint_source(SIM, src);
    assert_eq!(rep.findings.len(), 1);
    let f = &rep.findings[0];
    assert_eq!((f.rule, f.code), ("wall-clock", "D001"));
    assert_eq!(f.line, 2);
    assert!(f.col > 1);
    assert_eq!(f.path, SIM);
}

#[test]
fn multiple_rules_fire_in_one_file() {
    let src = "use std::collections::HashMap;\nfn f(x: f64) -> bool { x == 1.5 }";
    let mut hit = rules_hit(SIM, src);
    hit.sort_unstable();
    assert_eq!(hit, ["float-eq", "map-iter"]);
}
