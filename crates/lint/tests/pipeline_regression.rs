#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Regression coverage for the parallel-evaluation PR: the new pipeline
//! code (the operating-point cache, the perf-smoke gate, the space_eval
//! bench) must sit inside the lint scan's scope and stay clean, while the
//! real thread pool — which legitimately uses OS threads and wall-clock
//! primitives — stays outside it (`vendor/` is excluded by design).

use enprop_lint::{collect_rs_files, lint_source, scan_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

/// The files this PR added, relative to the workspace root.
const NEW_FILES: &[&str] = &[
    "crates/explore/src/cache.rs",
    "crates/explore/tests/parallel_props.rs",
    "crates/bench/src/bin/perf_smoke.rs",
    "crates/bench/benches/space_eval.rs",
];

#[test]
fn new_pipeline_files_are_scanned_and_clean() {
    let root = workspace_root();
    let scanned = collect_rs_files(root).unwrap();
    for rel in NEW_FILES {
        let path = root.join(rel);
        assert!(
            scanned.contains(&path),
            "{rel} escaped the lint walker — exclusions are too broad"
        );
        let src = std::fs::read_to_string(&path).unwrap();
        let report = lint_source(rel, &src);
        assert!(
            report.findings.is_empty(),
            "{rel} has lint findings: {:?}",
            report.findings
        );
    }
}

#[test]
fn vendored_pool_sees_only_lock_rules() {
    // The rayon pool uses std::thread and blocking primitives by design;
    // the hygiene rules must not reach it. It *is* walked now — but only
    // for the lock-discipline rules (C001/C002), whose Locks scope names
    // vendor/rayon explicitly. Every other vendored crate stays excluded.
    let root = workspace_root();
    let pool = root.join("vendor/rayon/src/lib.rs");
    assert!(pool.is_file(), "the vendored pool moved");
    let scanned = collect_rs_files(root).unwrap();
    assert!(
        scanned.contains(&pool),
        "vendor/rayon must be walked for the lock rules"
    );
    assert!(
        !scanned
            .iter()
            .any(|p| p.starts_with(root.join("vendor")) && !p.starts_with(root.join("vendor/rayon"))),
        "a non-rayon vendor crate leaked into the lint scan"
    );
    // A determinism violation in the vendored pool must NOT report: only
    // lock rules apply there.
    let fixture = "fn f() { let t = Instant::now(); let mut r = thread_rng(); }\n";
    let rep = lint_source("vendor/rayon/src/lib.rs", fixture);
    assert!(
        rep.findings.is_empty(),
        "hygiene rules leaked into vendor/rayon: {:?}",
        rep.findings
    );
    // …while a lock-discipline violation does.
    let fixture = "fn f(&self) { let g = self.inner.lock(); self.inner.lock().push(1); }\n";
    let rep = lint_source("vendor/rayon/src/lib.rs", fixture);
    assert!(
        rep.findings.iter().any(|f| f.code == "C001"),
        "lock rules must reach vendor/rayon: {:?}",
        rep.findings
    );
}

#[test]
fn cache_hashmap_is_legal_in_a_model_crate() {
    // D002 (HashMap iteration-order hazards) is scoped to Sim crates;
    // the explore cache's HashMap is keyed lookup only and must not
    // require a waiver. Guard the scoping with a focused fixture.
    let fixture = "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, f64> = HashMap::new(); }\n";
    let in_explore = lint_source("crates/explore/src/cache.rs", fixture);
    assert!(
        in_explore.findings.is_empty(),
        "HashMap wrongly flagged in a model crate: {:?}",
        in_explore.findings
    );
    let in_sim = lint_source("crates/clustersim/src/cache.rs", fixture);
    assert!(
        in_sim.findings.iter().any(|f| f.rule == "map-iter"),
        "expected the same fixture to trip D002 in a sim crate"
    );
}

#[test]
fn workspace_stays_clean_with_the_new_subsystems() {
    let rep = scan_workspace(workspace_root()).unwrap();
    assert!(
        rep.findings.is_empty(),
        "lint findings after the pipeline rebuild: {:?}",
        rep.findings
    );
}
