//! The expression spine: a lightweight statement/expression recovery layer
//! over the token tree — binary-operator chains, call receivers, method
//! chains, `let` bindings, assignments and struct-literal fields — without
//! a full AST.
//!
//! The spine is deliberately partial. Anything it does not positively
//! recognize (closure headers, blocks in expression position, complex
//! patterns) becomes [`Expr::Opaque`], and rules built on the spine only
//! fire on shapes it *did* recognize — so a parse limitation can suppress
//! a finding but never invent one. Statement keywords (`if`, `while`,
//! `match`, …) are skipped so the controlling expression after them still
//! parses; the block they govern is visited by the checker's own group
//! recursion, not by this parser.

use crate::lexer::{TokKind, Token};
use crate::tree::{Delim, Group, Tree};

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

/// Binary operators the spine recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Range,
}

impl BinOp {
    /// Larger binds tighter. Mirrors Rust's precedence for the operators
    /// the spine models.
    fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 8,
            BinOp::Add | BinOp::Sub => 7,
            BinOp::Shl | BinOp::Shr => 6,
            BinOp::BitAnd => 5,
            BinOp::BitXor => 4,
            BinOp::BitOr => 3,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 2,
            BinOp::AndAnd | BinOp::OrOr => 1,
            BinOp::Range => 0,
        }
    }

    /// Is this `+`/`-` (dimension-preserving only across like operands)?
    pub fn is_add_sub(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub)
    }

    /// Is this an ordering or equality comparison?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Compound/plain assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `%=` and the bit-ops (`&=`, `|=`, `^=`, `<<=`, `>>=`)
    Other,
}

/// A recovered expression. Spans point at the token that best identifies
/// the node (operator for binaries, first token otherwise).
#[derive(Debug, Clone)]
pub enum Expr {
    /// Numeric / string / char literal.
    Lit { kind: TokKind, pos: Pos },
    /// `a`, `a::b`, `self.x.y` — a pure identifier chain. `last` is the
    /// final segment (the one carrying any unit suffix).
    Path { text: String, last: String, pos: Pos },
    /// `f(args)` or `a::b::f(args)`.
    Call {
        last: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// `recv.method(args)`.
    Method {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// `recv[index]` — transparent for dimension purposes.
    Index { recv: Box<Expr>, pos: Pos },
    /// `(inner)` with exactly one expression inside.
    Paren { inner: Box<Expr>, pos: Pos },
    /// `-x`, `*x`, `&x` (transparent); `!x` is Opaque.
    Unary { inner: Box<Expr>, pos: Pos },
    /// `expr as ty`.
    Cast {
        inner: Box<Expr>,
        ty: String,
        pos: Pos,
    },
    /// `lhs op rhs`.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Anything the spine does not model.
    Opaque { pos: Pos },
}

impl Expr {
    /// Position of the node.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Lit { pos, .. }
            | Expr::Path { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Method { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Paren { pos, .. }
            | Expr::Unary { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Opaque { pos } => *pos,
        }
    }
}

/// A recovered statement (or statement-like segment).
#[derive(Debug)]
pub enum Stmt<'a> {
    /// `let name(: ty)? = init;` — `name` is `None` for non-trivial
    /// patterns (tuples, structs), in which case no binding is checked.
    Let {
        name: Option<String>,
        pos: Pos,
        init: Option<Expr>,
    },
    /// `target op value` for `=`, `+=`, `-=`, ….
    Assign {
        target: Expr,
        op: AssignOp,
        value: Expr,
        pos: Pos,
    },
    /// `name: value` inside a brace group — struct-literal field or
    /// struct-pattern field rename. Type ascriptions are filtered out.
    Field { name: String, pos: Pos, value: Expr },
    /// `return expr` (also `break expr`).
    Return { value: Option<Expr>, pos: Pos },
    /// `fn name(…) -> ty { body }` — the signature plus its body group.
    FnSig {
        name: String,
        body: Option<&'a Group>,
    },
    /// Bare expression(s): everything else that parsed.
    Exprs(Vec<Expr>),
}

/// One parser item: a leaf token, a joined multi-char operator, or a group.
enum Item<'a> {
    Tok(&'a Token),
    /// Joined operator (`==`, `+=`, `::`, `->`, …).
    Op(String, Pos),
    Group(&'a Group),
}

impl Item<'_> {
    fn pos(&self) -> Pos {
        match self {
            Item::Tok(t) => Pos {
                line: t.line,
                col: t.col,
            },
            Item::Op(_, p) => *p,
            Item::Group(g) => Pos {
                line: g.open.line,
                col: g.open.col,
            },
        }
    }

    fn is_punct(&self, s: &str) -> bool {
        match self {
            Item::Tok(t) => t.kind == TokKind::Punct && t.text == s,
            Item::Op(op, _) => op == s,
            Item::Group(_) => false,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Item::Tok(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }
}

/// Multi-char operators, longest first so maximal munch wins.
const JOINED: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "::", "->", "=>", "..",
];

/// Join adjacent single-char puncts into the operators of [`JOINED`],
/// using byte spans so `a = =b` never becomes `a == b`.
fn items<'a>(trees: &'a [Tree]) -> Vec<Item<'a>> {
    let mut out = Vec::with_capacity(trees.len());
    let mut i = 0;
    while i < trees.len() {
        let Tree::Leaf(t) = &trees[i] else {
            if let Tree::Group(g) = &trees[i] {
                out.push(Item::Group(g));
            }
            i += 1;
            continue;
        };
        if t.kind == TokKind::Punct {
            let mut joined = None;
            'ops: for op in JOINED {
                let n = op.len();
                if !t.text.starts_with(op.as_bytes()[0] as char) {
                    continue;
                }
                let mut text = String::new();
                let mut prev: Option<&Token> = None;
                for k in 0..n {
                    match trees.get(i + k) {
                        Some(Tree::Leaf(next)) if next.kind == TokKind::Punct => {
                            if let Some(p) = prev {
                                if !p.touches(next) {
                                    continue 'ops;
                                }
                            }
                            text.push_str(&next.text);
                            prev = Some(next);
                        }
                        _ => continue 'ops,
                    }
                }
                if text == *op {
                    joined = Some((op.to_string(), n));
                    break;
                }
            }
            if let Some((op, n)) = joined {
                out.push(Item::Op(
                    op,
                    Pos {
                        line: t.line,
                        col: t.col,
                    },
                ));
                i += n;
                continue;
            }
        }
        out.push(Item::Tok(t));
        i += 1;
    }
    out
}

/// Statement keywords skipped at segment/expression starts so the
/// expression they govern still parses.
const SKIP_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "in", "else", "loop", "unsafe", "mut", "ref", "move", "pub",
    "box", "await", "dyn", "crate", "super", "where", "const", "static",
];

/// Control keywords that *head a value expression* (`let x = if … {…}`,
/// `field: match … {…}`). The spine cannot model the branch values, and
/// treating the controlling condition as the bound value would invent
/// findings — the whole initializer is Opaque.
const CONTROL_HEADS: &[&str] = &["if", "match", "loop", "while", "for", "unsafe"];

/// Parse a value position (let initializer, assignment RHS, struct-literal
/// field value, return operand). A control-flow expression is Opaque as a
/// whole rather than degrading to its condition.
fn parse_value(seg: &[Item<'_>]) -> Expr {
    if let Some(head) = seg.first() {
        if head.ident().is_some_and(|id| CONTROL_HEADS.contains(&id)) {
            return Expr::Opaque { pos: head.pos() };
        }
    }
    first_expr(parse_expr_full(seg))
}

/// Primitive and common type heads: a `name: X` segment whose value starts
/// with one of these (or an uppercase ident, `&`, `[`, `(`, `*`) is a type
/// ascription, not a field initializer.
const TYPE_HEADS: &[&str] = &[
    "f64", "f32", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize", "bool", "char", "str", "fn", "dyn", "impl",
];

/// Split a group level's children into statement-like segments at
/// top-level `;`, `,` and `=>`, and after every top-level brace group
/// (blocks end statements in Rust, so `fn a() {} fn b() {}` inside an
/// `impl` become two segments, each owning its body). Returns the parsed
/// statements in order.
pub fn statements<'a>(trees: &'a [Tree]) -> Vec<Stmt<'a>> {
    let its = items(trees);
    let mut out = Vec::new();
    let mut start = 0;
    for (idx, it) in its.iter().enumerate() {
        if it.is_punct(";") || it.is_punct(",") || it.is_punct("=>") {
            if idx > start {
                out.push(parse_stmt(&its[start..idx]));
            }
            start = idx + 1;
        } else if matches!(it, Item::Group(g) if g.delim == Delim::Brace) {
            // Close the segment *including* the brace group — unless an
            // infix context follows (`else`, an operator, `.`), in which
            // case the block is mid-expression and the segment continues.
            let continues = match its.get(idx + 1) {
                Some(next) => {
                    next.ident() == Some("else")
                        || next.is_punct(".")
                        || bin_op_of(next).is_some()
                }
                None => false,
            };
            if !continues {
                out.push(parse_stmt(&its[start..=idx]));
                start = idx + 1;
            }
        }
    }
    if start < its.len() {
        out.push(parse_stmt(&its[start..]));
    }
    out
}

/// Whether the final segment of the level ends without `;` (a trailing
/// expression in Rust block position).
pub fn has_trailing_expr(trees: &[Tree]) -> bool {
    let its = items(trees);
    match its.last() {
        Some(it) => !it.is_punct(";"),
        None => false,
    }
}

fn parse_stmt<'a>(seg: &[Item<'a>]) -> Stmt<'a> {
    let mut i = 0;

    // `fn name(args) -> ty { body }` — possibly preceded by `pub` etc.
    {
        let mut j = 0;
        while seg.get(j).and_then(Item::ident).is_some_and(|id| {
            id == "pub" || id == "const" || id == "unsafe" || id == "extern" || id == "async"
        }) {
            j += 1;
        }
        // `pub(crate)` — a paren group after `pub`.
        if j > 0 {
            while matches!(seg.get(j), Some(Item::Group(g)) if g.delim == Delim::Paren) {
                j += 1;
            }
        }
        if seg.get(j).and_then(Item::ident) == Some("fn") {
            if let Some(name) = seg.get(j + 1).and_then(Item::ident) {
                let body = seg.iter().rev().find_map(|it| match it {
                    Item::Group(g) if g.delim == Delim::Brace => Some(*g),
                    _ => None,
                });
                return Stmt::FnSig {
                    name: name.to_string(),
                    body,
                };
            }
        }
    }

    // `let` binding.
    if seg.first().and_then(Item::ident) == Some("let") {
        let pos = seg[0].pos();
        let mut k = 1;
        while seg.get(k).and_then(Item::ident) == Some("mut") {
            k += 1;
        }
        // Simple-ident pattern only when followed by `:`/`=`/end; tuple
        // and struct patterns leave `name` as None (nothing to check).
        let name = match (seg.get(k).and_then(Item::ident), seg.get(k + 1)) {
            (Some(id), None) => Some(id.to_string()),
            (Some(id), Some(next)) if next.is_punct(":") || next.is_punct("=") => {
                Some(id.to_string())
            }
            _ => None,
        };
        // Find the top-level `=` (skipping any `: Type` annotation).
        let eq = seg.iter().position(|it| it.is_punct("="));
        let init = eq.map(|at| parse_value(&seg[at + 1..]));
        return Stmt::Let { name, pos, init };
    }

    // Skip leading statement keywords for the remaining forms.
    while seg.get(i).and_then(Item::ident).is_some_and(|id| SKIP_KEYWORDS.contains(&id)) {
        i += 1;
    }
    let seg = &seg[i..];
    if seg.is_empty() {
        return Stmt::Exprs(Vec::new());
    }

    // `return expr` / `break expr`.
    if let Some(kw) = seg.first().and_then(Item::ident) {
        if kw == "return" || kw == "break" {
            let pos = seg[0].pos();
            let value = if seg.len() > 1 {
                Some(parse_value(&seg[1..]))
            } else {
                None
            };
            return Stmt::Return { value, pos };
        }
    }

    // Assignment: a top-level `=` / `+=` / … splits target from value.
    for (idx, it) in seg.iter().enumerate() {
        let op = match it {
            Item::Op(op, _) => match op.as_str() {
                "=" => Some(AssignOp::Assign),
                "+=" => Some(AssignOp::AddAssign),
                "-=" => Some(AssignOp::SubAssign),
                "*=" => Some(AssignOp::MulAssign),
                "/=" => Some(AssignOp::DivAssign),
                "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => Some(AssignOp::Other),
                _ => None,
            },
            Item::Tok(t) if t.kind == TokKind::Punct && t.text == "=" => Some(AssignOp::Assign),
            _ => None,
        };
        if let Some(op) = op {
            if idx == 0 {
                break;
            }
            let pos = it.pos();
            let target = first_expr(parse_expr_full(&seg[..idx]));
            let value = parse_value(&seg[idx + 1..]);
            return Stmt::Assign {
                target,
                op,
                value,
                pos,
            };
        }
    }

    // `name: value` field binding (struct literal / pattern). Exclude type
    // ascriptions by inspecting the value's head.
    if seg.len() >= 3 && seg[1].is_punct(":") {
        if let Some(name) = seg[0].ident() {
            let val = &seg[2];
            let is_type = match val {
                Item::Tok(t) => match t.kind {
                    TokKind::Ident => {
                        t.text.starts_with(|c: char| c.is_uppercase())
                            || TYPE_HEADS.contains(&t.text.as_str())
                    }
                    TokKind::Punct => matches!(t.text.as_str(), "&" | "*" | "<"),
                    _ => false,
                },
                Item::Op(op, _) => op == "::",
                Item::Group(g) => g.delim != Delim::Paren,
            };
            if !is_type {
                let pos = seg[0].pos();
                return Stmt::Field {
                    name: name.to_string(),
                    pos,
                    value: parse_value(&seg[2..]),
                };
            }
        }
    }

    Stmt::Exprs(parse_expr_full(seg))
}

/// Parse as many expressions as the segment yields: the spine parses one
/// expression, and if tokens remain (statement keywords, closure pipes,
/// pattern scraps) it skips one item and tries again — so an embedded
/// binary chain is recovered no matter what surrounds it.
fn parse_expr_full(seg: &[Item<'_>]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut rest = seg;
    while !rest.is_empty() {
        // Skip keywords and stray items that cannot start an expression.
        if rest[0]
            .ident()
            .is_some_and(|id| SKIP_KEYWORDS.contains(&id))
        {
            rest = &rest[1..];
            continue;
        }
        let (expr, used) = parse_binary(rest, 0);
        if used == 0 {
            rest = &rest[1..];
            continue;
        }
        out.push(expr);
        rest = &rest[used..];
    }
    out
}

/// The first parsed expression of a segment, or Opaque if none.
fn first_expr(mut exprs: Vec<Expr>) -> Expr {
    if exprs.is_empty() {
        Expr::Opaque {
            pos: Pos { line: 0, col: 0 },
        }
    } else {
        exprs.swap_remove(0)
    }
}

fn bin_op_of(item: &Item<'_>) -> Option<BinOp> {
    match item {
        Item::Op(op, _) => match op.as_str() {
            "==" => Some(BinOp::Eq),
            "!=" => Some(BinOp::Ne),
            "<=" => Some(BinOp::Le),
            ">=" => Some(BinOp::Ge),
            "&&" => Some(BinOp::AndAnd),
            "||" => Some(BinOp::OrOr),
            "<<" => Some(BinOp::Shl),
            ">>" => Some(BinOp::Shr),
            ".." | "..=" | "..." => Some(BinOp::Range),
            _ => None,
        },
        Item::Tok(t) if t.kind == TokKind::Punct => match t.text.as_str() {
            "+" => Some(BinOp::Add),
            "-" => Some(BinOp::Sub),
            "*" => Some(BinOp::Mul),
            "/" => Some(BinOp::Div),
            "%" => Some(BinOp::Rem),
            "<" => Some(BinOp::Lt),
            ">" => Some(BinOp::Gt),
            "&" => Some(BinOp::BitAnd),
            "|" => Some(BinOp::BitOr),
            "^" => Some(BinOp::BitXor),
            _ => None,
        },
        _ => None,
    }
}

/// Pratt loop: parse a primary, then fold in binary operators of at least
/// `min_prec`. Returns the expression and the number of items consumed.
fn parse_binary(seg: &[Item<'_>], min_prec: u8) -> (Expr, usize) {
    let (mut lhs, mut used) = parse_primary(seg);
    if used == 0 {
        return (lhs, 0);
    }
    while let Some((op_item, op)) = seg.get(used).and_then(|it| Some((it, bin_op_of(it)?))) {
        let prec = op.precedence();
        if prec < min_prec {
            break;
        }
        let pos = op_item.pos();
        let (rhs, rhs_used) = parse_binary(&seg[used + 1..], prec + 1);
        if rhs_used == 0 {
            break;
        }
        used += 1 + rhs_used;
        lhs = Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        };
    }
    (lhs, used)
}

/// Parse one primary expression with its postfix chain (`.field`,
/// `.method(…)`, `(…)` call, `[…]` index, `?`, `as ty`).
fn parse_primary(seg: &[Item<'_>]) -> (Expr, usize) {
    let Some(first) = seg.first() else {
        return (
            Expr::Opaque {
                pos: Pos { line: 0, col: 0 },
            },
            0,
        );
    };
    let pos = first.pos();

    // Prefix operators: `-`, `*`, `&` are dimension-transparent; `!` is
    // not. `&mut x` needs the `mut` skipped too.
    if first.is_punct("-") || first.is_punct("*") || first.is_punct("&") || first.is_punct("!") {
        let transparent = !first.is_punct("!");
        let mut k = 1;
        while seg.get(k).and_then(Item::ident) == Some("mut") {
            k += 1;
        }
        let (inner, used) = parse_primary(&seg[k..]);
        if used == 0 {
            return (Expr::Opaque { pos }, 0);
        }
        let expr = if transparent {
            Expr::Unary {
                inner: Box::new(inner),
                pos,
            }
        } else {
            Expr::Opaque { pos }
        };
        return (expr, k + used);
    }

    let (mut expr, mut used) = match first {
        Item::Tok(t) => match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => (
                Expr::Lit { kind: t.kind, pos },
                1,
            ),
            TokKind::Ident => {
                if SKIP_KEYWORDS.contains(&t.text.as_str()) || t.text == "as" {
                    return (Expr::Opaque { pos }, 0);
                }
                // Leading `::`-path: `a::b::c` (turbofish skipped).
                let mut text = t.text.clone();
                let mut last = t.text.clone();
                let mut k = 1;
                while seg.get(k).is_some_and(|it| it.is_punct("::")) {
                    // Turbofish `::<…>`: skip to the matching `>`.
                    if seg.get(k + 1).is_some_and(|it| it.is_punct("<")) {
                        let mut depth = 1usize;
                        let mut j = k + 2;
                        while depth > 0 {
                            match seg.get(j) {
                                Some(it) if it.is_punct("<") => depth += 1,
                                Some(it) if it.is_punct(">") => depth -= 1,
                                Some(_) => {}
                                None => break,
                            }
                            j += 1;
                        }
                        k = j;
                        continue;
                    }
                    match seg.get(k + 1).and_then(Item::ident) {
                        Some(id) => {
                            text.push_str("::");
                            text.push_str(id);
                            last = id.to_string();
                            k += 2;
                        }
                        None => break,
                    }
                }
                // Macro invocation `name!(…)` / `vec![…]`: the expansion
                // is unknowable here — the whole thing is Opaque.
                if seg.get(k).is_some_and(|it| it.is_punct("!"))
                    && matches!(seg.get(k + 1), Some(Item::Group(_)))
                {
                    return (Expr::Opaque { pos }, k + 2);
                }
                (
                    Expr::Path {
                        text,
                        last,
                        pos,
                    },
                    k,
                )
            }
            TokKind::Lifetime | TokKind::Punct => return (Expr::Opaque { pos }, 0),
        },
        Item::Group(g) => match g.delim {
            Delim::Paren => {
                let inner = statements(&g.children);
                // A single parsed expression: transparent parentheses.
                match single_expr(inner) {
                    Some(e) => (
                        Expr::Paren {
                            inner: Box::new(e),
                            pos,
                        },
                        1,
                    ),
                    None => (Expr::Opaque { pos }, 1),
                }
            }
            Delim::Bracket | Delim::Brace => (Expr::Opaque { pos }, 1),
        },
        Item::Op(_, _) => return (Expr::Opaque { pos }, 0),
    };

    // Postfix chain.
    loop {
        match seg.get(used) {
            // `.method(args)` / `.field` / `.await` / `.0`
            Some(it) if it.is_punct(".") => {
                let Some(next) = seg.get(used + 1) else { break };
                match next {
                    Item::Tok(t) if t.kind == TokKind::Ident => {
                        let name = t.text.clone();
                        // Method turbofish `.gen::<f64>(…)`: skip the type
                        // arguments so the call still parses as a Method.
                        let after_tf = skip_turbofish(seg, used + 2).unwrap_or(used + 2);
                        if let Some(Item::Group(g)) = seg.get(after_tf) {
                            if g.delim == Delim::Paren {
                                expr = Expr::Method {
                                    recv: Box::new(expr),
                                    method: name,
                                    args: call_args(g),
                                    pos: next.pos(),
                                };
                                used = after_tf + 1;
                                continue;
                            }
                        }
                        // Plain field access: extend a path chain, or wrap.
                        expr = match expr {
                            Expr::Path { text, pos, .. } => Expr::Path {
                                text: format!("{text}.{name}"),
                                last: name,
                                pos,
                            },
                            other => Expr::Method {
                                recv: Box::new(other),
                                method: name,
                                args: Vec::new(),
                                pos: next.pos(),
                            },
                        };
                        used += 2;
                    }
                    // Tuple index `.0` — transparent.
                    Item::Tok(t) if t.kind == TokKind::Int => {
                        used += 2;
                    }
                    _ => break,
                }
            }
            // Call on a path: `f(args)`.
            Some(Item::Group(g)) if g.delim == Delim::Paren => {
                match &expr {
                    Expr::Path { last, pos, .. } => {
                        expr = Expr::Call {
                            last: last.clone(),
                            args: call_args(g),
                            pos: *pos,
                        };
                        used += 1;
                    }
                    _ => break,
                }
            }
            // Index: `recv[i]` — transparent for dimensions.
            Some(Item::Group(g)) if g.delim == Delim::Bracket => {
                expr = Expr::Index {
                    recv: Box::new(expr),
                    pos,
                };
                used += 1;
            }
            // `?` — transparent.
            Some(it) if it.is_punct("?") => {
                used += 1;
            }
            // `as ty` cast.
            Some(it) if it.ident() == Some("as") => {
                let mut ty = String::new();
                let mut k = used + 1;
                while let Some(id) = seg.get(k).and_then(Item::ident) {
                    if !ty.is_empty() {
                        ty.push_str("::");
                    }
                    ty.push_str(id);
                    k += 1;
                    if seg.get(k).is_some_and(|it| it.is_punct("::")) {
                        k += 1;
                    } else {
                        break;
                    }
                }
                if ty.is_empty() {
                    break;
                }
                expr = Expr::Cast {
                    inner: Box::new(expr),
                    ty,
                    pos: it.pos(),
                };
                used = k;
            }
            _ => break,
        }
    }
    (expr, used)
}

/// If `seg[at]` starts a turbofish (`::` `<` … `>`), return the index just
/// past the closing `>`.
fn skip_turbofish(seg: &[Item<'_>], at: usize) -> Option<usize> {
    if !seg.get(at).is_some_and(|it| it.is_punct("::"))
        || !seg.get(at + 1).is_some_and(|it| it.is_punct("<"))
    {
        return None;
    }
    let mut depth = 1usize;
    let mut j = at + 2;
    while depth > 0 {
        match seg.get(j) {
            Some(it) if it.is_punct("<") => depth += 1,
            Some(it) if it.is_punct(">") => depth -= 1,
            Some(_) => {}
            None => return None,
        }
        j += 1;
    }
    Some(j)
}

/// Extract the lone expression from a parsed statement list, if that is
/// what the group held.
fn single_expr(mut stmts: Vec<Stmt<'_>>) -> Option<Expr> {
    if stmts.len() != 1 {
        return None;
    }
    match stmts.pop() {
        Some(Stmt::Exprs(mut es)) if es.len() == 1 => es.pop(),
        _ => None,
    }
}

/// Parse a call group's children into argument expressions (one per
/// comma-separated segment; non-expression segments are dropped).
fn call_args(g: &Group) -> Vec<Expr> {
    let mut args = Vec::new();
    for stmt in statements(&g.children) {
        if let Stmt::Exprs(es) = stmt {
            args.extend(es);
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn stmts_of(src: &str) -> usize {
        let toks = lex(src).tokens;
        let tree = build(&toks);
        statements(&tree).len()
    }

    fn parse_one(src: &str) -> Expr {
        let toks = lex(src).tokens;
        let tree = build(&toks);
        let mut stmts = statements(&tree);
        assert_eq!(stmts.len(), 1, "expected one statement in {src:?}");
        match stmts.pop() {
            Some(Stmt::Exprs(mut es)) => {
                assert_eq!(es.len(), 1, "expected one expr in {src:?}");
                es.pop().unwrap()
            }
            other => panic!("expected expr statement, got {other:?}"),
        }
    }

    #[test]
    fn binary_precedence() {
        let e = parse_one("a + b * c");
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected Add at the top, got {other:?}"),
        }
    }

    #[test]
    fn method_chain_and_call() {
        let e = parse_one("self.node.busy_power_w(u).max(floor_w)");
        match e {
            Expr::Method { method, recv, .. } => {
                assert_eq!(method, "max");
                assert!(matches!(*recv, Expr::Method { ref method, .. } if method == "busy_power_w"));
            }
            other => panic!("expected method chain, got {other:?}"),
        }
    }

    #[test]
    fn let_binding_recovers_name_and_init() {
        let toks = lex("let energy_j = p_w * dt_s;").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        match &stmts[0] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name.as_deref(), Some("energy_j"));
                assert!(matches!(init, Some(Expr::Binary { op: BinOp::Mul, .. })));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn compound_assign() {
        let toks = lex("n.energy_j += joules;").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        match &stmts[0] {
            Stmt::Assign { target, op, value, .. } => {
                assert!(matches!(target, Expr::Path { last, .. } if last == "energy_j"));
                assert_eq!(*op, AssignOp::AddAssign);
                assert!(matches!(value, Expr::Path { last, .. } if last == "joules"));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn eq_is_not_two_assigns() {
        let toks = lex("a == b;").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        assert!(matches!(&stmts[0], Stmt::Exprs(es) if matches!(es[0], Expr::Binary { op: BinOp::Eq, .. })));
    }

    #[test]
    fn fn_sig_with_body() {
        let toks = lex("pub fn busy_power_w(&self, u: f64) -> f64 { self.peak_w * u }").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        match &stmts[0] {
            Stmt::FnSig { name, body } => {
                assert_eq!(name, "busy_power_w");
                assert!(body.is_some());
            }
            other => panic!("expected fn sig, got {other:?}"),
        }
    }

    #[test]
    fn type_ascription_is_not_a_field() {
        // Struct declaration fields must not parse as field initializers.
        let toks = lex("energy_j: f64").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        assert!(matches!(&stmts[0], Stmt::Exprs(_)));
    }

    #[test]
    fn struct_literal_field_parses() {
        let toks = lex("energy_j: watts * dt").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        assert!(matches!(&stmts[0], Stmt::Field { name, .. } if name == "energy_j"));
    }

    #[test]
    fn cast_is_transparent() {
        let e = parse_one("ops as f64");
        assert!(matches!(e, Expr::Cast { ty, .. } if ty == "f64"));
    }

    #[test]
    fn statement_splitting() {
        assert_eq!(stmts_of("a; b; c"), 3);
        assert_eq!(stmts_of("a, b"), 2);
    }

    #[test]
    fn control_flow_initializer_is_opaque() {
        // `let x = if cond { a } else { b };` must NOT degrade to `cond`
        // as the bound value — that would let rules fire on a misparse.
        let toks = lex("let ideal_j = if busy { dt_s * peak_w } else { 0.0 };").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        match &stmts[0] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name.as_deref(), Some("ideal_j"));
                assert!(matches!(init, Some(Expr::Opaque { .. })), "{init:?}");
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn macro_invocation_is_opaque() {
        let toks = lex("let bytes = vec![0u8; 256];").tokens;
        let tree = build(&toks);
        let stmts = statements(&tree);
        match &stmts[0] {
            Stmt::Let { init, .. } => {
                assert!(matches!(init, Some(Expr::Opaque { .. })), "{init:?}");
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn method_turbofish_parses_as_method() {
        let e = parse_one("rng.gen::<f64>()");
        assert!(matches!(e, Expr::Method { ref method, .. } if method == "gen"), "{e:?}");
    }
}
