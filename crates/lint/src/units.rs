//! The physical-dimension lattice and the identifier-suffix grammar that
//! maps this workspace's naming conventions onto it.
//!
//! A dimension is an exponent vector over four base quantities: energy
//! (joules), time (seconds), operation count, and bytes. Power is `J·s⁻¹`,
//! frequency `s⁻¹`, a service rate `ops·s⁻¹`, a per-op energy `J·ops⁻¹`.
//! The all-zero vector is *dimensionless* — distinct from *unknown* (an
//! identifier with no unit suffix), which is represented as `None` at the
//! inference layer and unifies with anything.
//!
//! # Suffix grammar
//!
//! Scanning an identifier's trailing `_`-separated segments:
//!
//! ```text
//! ident   := prefix '_' unitexpr            (prefix non-empty)
//! unitexpr := count 'per' denom             -- e.g. j_per_op, req_per_s
//!           | 'ops' 's'                     -- ops_s ≡ ops·s⁻¹
//!           | unit
//! unit    := 'j' | 'w' | 's' | 'sec' | 'secs' | 'ms' | 'us' | 'ns'
//!          | 'hz' | 'khz' | 'mhz' | 'ghz' | 'ops' | 'op' | 'pct' | 'frac'
//!          | 'ratio' | 'factor' | 'bytes' | 'kb' | 'mb' | 'gb'
//!          | 'joules' | 'watts'
//! denom   := unit | 'job' | 'jobs'          -- per-event: denominator drops
//! count   := unit | <any segment>           -- unknown counts read as ops
//! ```
//!
//! Known limits (documented in DESIGN.md §15): the lattice tracks
//! dimension, not scale — `_ms` and `_s` are both time, so a missing
//! `/ 1000.0` is invisible; `sqrt`/`powi`/`exp` erase dimensions (the
//! lattice has no fractional exponents); unknown counts (`req`, `cycles`,
//! `bytes_per_op` numerators) all collapse onto the op/byte axes listed
//! above, so unlike counts do not conflict.

use std::fmt;

/// Exponent vector over (J, s, ops, bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim {
    pub j: i8,
    pub s: i8,
    pub ops: i8,
    pub b: i8,
}

/// Dimensionless: the all-zero vector (`_pct`, `_frac`, `_ratio`, or any
/// quotient of like dimensions).
pub const DIMLESS: Dim = Dim {
    j: 0,
    s: 0,
    ops: 0,
    b: 0,
};

const ENERGY: Dim = Dim { j: 1, s: 0, ops: 0, b: 0 };
const POWER: Dim = Dim { j: 1, s: -1, ops: 0, b: 0 };
const TIME: Dim = Dim { j: 0, s: 1, ops: 0, b: 0 };
const FREQ: Dim = Dim { j: 0, s: -1, ops: 0, b: 0 };
const OPS: Dim = Dim { j: 0, s: 0, ops: 1, b: 0 };
const BYTES: Dim = Dim { j: 0, s: 0, ops: 0, b: 1 };

/// Dimension of a product: exponents add.
impl std::ops::Mul for Dim {
    type Output = Dim;
    fn mul(self, rhs: Dim) -> Dim {
        Dim {
            j: self.j.saturating_add(rhs.j),
            s: self.s.saturating_add(rhs.s),
            ops: self.ops.saturating_add(rhs.ops),
            b: self.b.saturating_add(rhs.b),
        }
    }
}

/// Dimension of a quotient: exponents subtract.
impl std::ops::Div for Dim {
    type Output = Dim;
    fn div(self, rhs: Dim) -> Dim {
        Dim {
            j: self.j.saturating_sub(rhs.j),
            s: self.s.saturating_sub(rhs.s),
            ops: self.ops.saturating_sub(rhs.ops),
            b: self.b.saturating_sub(rhs.b),
        }
    }
}

impl Dim {
    /// Dimension of a reciprocal (`.recip()`).
    pub fn recip(self) -> Dim {
        DIMLESS / self
    }
}

impl fmt::Display for Dim {
    /// Canonical names for the common points of the lattice, exponent
    /// form for the rest. This string is what `--json` carries in the
    /// per-finding `dims` annotation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let named = match (self.j, self.s, self.ops, self.b) {
            (0, 0, 0, 0) => Some("1"),
            (1, 0, 0, 0) => Some("J"),
            (1, -1, 0, 0) => Some("W"),
            (0, 1, 0, 0) => Some("s"),
            (0, -1, 0, 0) => Some("1/s"),
            (0, 0, 1, 0) => Some("ops"),
            (0, -1, 1, 0) => Some("ops/s"),
            (1, 0, -1, 0) => Some("J/op"),
            (1, -2, 0, 0) => Some("W/s"),
            (0, 0, 0, 1) => Some("B"),
            (0, 0, -1, 1) => Some("B/op"),
            (0, -1, 0, 1) => Some("B/s"),
            (0, 0, 1, -1) => Some("ops/B"),
            (0, 2, 0, 0) => Some("s^2"),
            _ => None,
        };
        match named {
            Some(n) => f.write_str(n),
            None => {
                let mut first = true;
                for (sym, e) in [("J", self.j), ("s", self.s), ("ops", self.ops), ("B", self.b)] {
                    if e == 0 {
                        continue;
                    }
                    if !first {
                        f.write_str("·")?;
                    }
                    write!(f, "{sym}^{e}")?;
                    first = false;
                }
                if first {
                    f.write_str("1")?;
                }
                Ok(())
            }
        }
    }
}

/// Dimension of one unit segment, if it is a unit segment at all.
/// Scale prefixes (`ms`, `ghz`, `kb`) map to the same dimension as the
/// base unit — the lattice tracks dimension, not magnitude.
fn unit_segment(seg: &str) -> Option<Dim> {
    match seg {
        "j" | "joules" => Some(ENERGY),
        "w" | "watts" => Some(POWER),
        "s" | "sec" | "secs" | "ms" | "us" | "ns" => Some(TIME),
        "hz" | "khz" | "mhz" | "ghz" => Some(FREQ),
        "ops" | "op" => Some(OPS),
        "pct" | "frac" | "ratio" | "factor" => Some(DIMLESS),
        "bytes" | "kb" | "mb" | "gb" => Some(BYTES),
        _ => None,
    }
}

/// Dimension read off a count-position segment (the numerator of a
/// `_X_per_Y` compound): a real unit keeps its dimension, a few words are
/// recognized, anything else is an unknown count and reads as `ops`.
fn count_segment(seg: &str) -> Dim {
    if let Some(d) = unit_segment(seg) {
        return d;
    }
    match seg {
        "energy" => ENERGY,
        "power" => POWER,
        "time" => TIME,
        _ => OPS,
    }
}

/// Infer the dimension an identifier claims through its suffix, or `None`
/// when the name carries no unit convention.
pub fn dim_of_ident(name: &str) -> Option<Dim> {
    let segs: Vec<&str> = name.split('_').filter(|s| !s.is_empty()).collect();
    let n = segs.len();
    if n < 2 {
        // A bare `s` / `j` / `ms` variable is a name, not a unit claim —
        // but full unit *words* are unambiguous even alone (`joules`,
        // `watts`, `ops`, `bytes` as locals in accumulation loops).
        return match segs.first() {
            Some(&"joules") => Some(ENERGY),
            Some(&"watts") => Some(POWER),
            Some(&"ops") => Some(OPS),
            Some(&"bytes") => Some(BYTES),
            Some(&"duration") => Some(TIME),
            Some(&"count") => Some(DIMLESS),
            _ => None,
        };
    }
    // `…_X_per_Y`
    if n >= 3 && segs[n - 2] == "per" {
        // A per-*event* quantity (`ops_per_job`) is an amount per
        // dimensionless occurrence: the denominator drops out.
        let denom = match segs[n - 1] {
            "job" | "jobs" => DIMLESS,
            other => unit_segment(other)?,
        };
        let num = count_segment(segs[n - 3]);
        return Some(num / denom);
    }
    // `…_ops_s` ≡ ops per second (the `cluster_capacity_ops_s` convention).
    if n >= 3 && segs[n - 2] == "ops" && segs[n - 1] == "s" {
        return Some(OPS / TIME);
    }
    unit_segment(segs[n - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_suffixes() {
        assert_eq!(dim_of_ident("energy_j"), Some(ENERGY));
        assert_eq!(dim_of_ident("busy_power_w"), Some(POWER));
        assert_eq!(dim_of_ident("repair_s"), Some(TIME));
        assert_eq!(dim_of_ident("freq_ghz"), Some(FREQ));
        assert_eq!(dim_of_ident("node_ops"), Some(OPS));
        assert_eq!(dim_of_ident("dpr_pct"), Some(DIMLESS));
        assert_eq!(dim_of_ident("peak_rss_kb"), Some(BYTES));
        assert_eq!(dim_of_ident("total_joules"), Some(ENERGY));
    }

    #[test]
    fn compound_suffixes() {
        assert_eq!(dim_of_ident("cost_j_per_op"), Some(ENERGY / OPS));
        assert_eq!(dim_of_ident("req_per_s"), Some(OPS / TIME));
        assert_eq!(dim_of_ident("cluster_capacity_ops_s"), Some(OPS / TIME));
        assert_eq!(dim_of_ident("cycles_per_op"), Some(DIMLESS));
        assert_eq!(dim_of_ident("io_bytes_per_op"), Some(BYTES / OPS));
        assert_eq!(dim_of_ident("energy_per_op"), Some(ENERGY / OPS));
        // J/s is W: the display collapses onto the canonical name.
        assert_eq!(dim_of_ident("drain_j_per_s"), Some(POWER));
        // Per-event denominators drop out; `sec` aliases `s`.
        assert_eq!(dim_of_ident("ops_per_job"), Some(OPS));
        assert_eq!(dim_of_ident("ops_per_sec"), Some(OPS / TIME));
        // …but an unknown denominator still voids the claim entirely.
        assert_eq!(dim_of_ident("ops_per_shard"), None);
    }

    #[test]
    fn non_units_stay_unknown() {
        assert_eq!(dim_of_ident("s"), None);
        assert_eq!(dim_of_ident("j"), None);
        // …but bare unit *words* claim their dimension.
        assert_eq!(dim_of_ident("joules"), Some(ENERGY));
        assert_eq!(dim_of_ident("ops"), Some(OPS));
        assert_eq!(dim_of_ident("duration"), Some(TIME));
        assert_eq!(dim_of_ident("retry_factor"), Some(DIMLESS));
        assert_eq!(dim_of_ident("blocks_x"), None);
        assert_eq!(dim_of_ident("io_rate"), None);
        assert_eq!(dim_of_ident("index"), None);
        assert_eq!(dim_of_ident("mem_cycles"), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(POWER * TIME, ENERGY);
        assert_eq!(ENERGY / TIME, POWER);
        assert_eq!(ENERGY / ENERGY, DIMLESS);
        assert_eq!(FREQ, TIME.recip());
    }

    #[test]
    fn display_names() {
        assert_eq!(POWER.to_string(), "W");
        assert_eq!((ENERGY / OPS).to_string(), "J/op");
        assert_eq!((OPS / TIME).to_string(), "ops/s");
        assert_eq!(DIMLESS.to_string(), "1");
        assert_eq!((ENERGY * ENERGY).to_string(), "J^2");
        assert_eq!((ENERGY * TIME).to_string(), "J^1·s^1");
    }
}
