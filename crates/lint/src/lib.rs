//! # enprop-lint
//!
//! Domain-aware static analysis for the enprop workspace. The compiler
//! cannot see the reproduction's two load-bearing invariants:
//!
//! * **bit-identical determinism** — golden JSONL traces and the
//!   plain-vs-`_obs` bit-identity contract (DESIGN.md §10) break the
//!   moment a sim crate reads the host clock, iterates a `HashMap`, or
//!   grows ambient mutable state;
//! * **numeric fidelity** — the paper's Table 4 claims few-percent model
//!   error, which a silent truncating cast, an f32 in an energy integral,
//!   or a NaN-propagating sort can consume without any test failing.
//!
//! This crate encodes those invariants as lexical rules over a hand-rolled
//! comment/string-aware tokenizer ([`lexer`]), so the pass has zero
//! dependencies and works in the offline build. Rules are scoped per crate
//! (simulation crates, model crates, or workspace-wide) and individually
//! waivable at a site with a justification; see [`rules::RULES`] for the
//! catalogue and DESIGN.md §11 for the rationale behind each rule.
//!
//! Run it with `cargo run -p enprop-lint` (text) or
//! `cargo run -p enprop-lint -- --json` (CI). Exit codes: **0** clean,
//! **1** findings, **2** usage or I/O error.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dims;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod scan;
pub mod spine;
pub mod tree;
pub mod units;

pub use rules::{lint_source, FileReport, Finding, Rule, WaiverRecord, RULES};
pub use scan::{collect_rs_files, find_workspace_root, scan_workspace, Report};
