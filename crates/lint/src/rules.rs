//! The rule catalogue: determinism (D) and numeric-hygiene (N) rules, plus
//! the waiver-syntax (W) rule that keeps waivers themselves honest.
//!
//! Every rule is deliberately lexical. The simulators' two load-bearing
//! invariants — bit-identical replay of golden traces and the few-percent
//! model-error claim of Table 4 — are violated by *token-level* constructs
//! (`Instant::now`, `HashMap` iteration, `.floor() as usize`, float `==`),
//! so a comment/string-aware token scan catches them without a type
//! checker, keeps the pass dependency-free for the offline build, and runs
//! over the whole workspace in milliseconds.

use crate::lexer::{Comment, TokKind, Token};

/// Where a rule applies, expressed over crate short names (the `<name>` in
/// `crates/<name>`; files outside `crates/` belong to the `root` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Discrete-event simulation state: replay determinism is the contract.
    Sim,
    /// Model/math code: numeric fidelity is the contract.
    Model,
    /// Union of [`Scope::Sim`] and [`Scope::Model`].
    SimOrModel,
    /// Every scanned file.
    Workspace,
    /// The lock-discipline surface: the vendored `rayon` stub (the one
    /// vendored crate we own the locking behavior of), the `obs` crate,
    /// and the explore result cache — the only places the workspace takes
    /// locks. Path-based, not crate-based, because `vendor/` is otherwise
    /// out of scope.
    Locks,
}

/// Is `rel_path` part of the lock-discipline surface ([`Scope::Locks`])?
pub fn lock_scope(rel_path: &str) -> bool {
    rel_path.starts_with("vendor/rayon/")
        || crate_of(rel_path) == "obs"
        || rel_path == "crates/explore/src/cache.rs"
}

/// Crates whose state drives discrete-event simulation: any
/// nondeterminism here breaks golden-trace replay.
pub const SIM_CRATES: &[&str] = &["nodesim", "clustersim", "queueing", "faults", "obs", "serve"];

/// Crates holding the paper's numeric models: silent precision loss here
/// corrupts the Table 4 error claim.
pub const MODEL_CRATES: &[&str] = &[
    "core",
    "metrics",
    "queueing",
    "nodesim",
    "clustersim",
    "workloads",
    "explore",
    "obs",
];

/// One lint rule: stable id (used in waivers and JSON), short code,
/// one-line summary, and the rationale shown by `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub id: &'static str,
    pub code: &'static str,
    pub scope: Scope,
    pub summary: &'static str,
    pub rationale: &'static str,
}

/// The full catalogue, in display order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        code: "D001",
        scope: Scope::Sim,
        summary: "no `Instant::now()` / `SystemTime` in simulation crates",
        rationale: "Sim time is the f64 clock the event queues advance; reading the host \
                    clock makes runs irreproducible and breaks golden-trace bit-identity. \
                    Wall-clock self-profiling must be waived explicitly.",
    },
    Rule {
        id: "map-iter",
        code: "D002",
        scope: Scope::Sim,
        summary: "no `HashMap`/`HashSet` in simulation crates",
        rationale: "std hash maps iterate in RandomState order, so any fold, drain or \
                    event emission over one reorders floating-point reductions and trace \
                    events between runs. Use BTreeMap/BTreeSet or index-keyed Vecs.",
    },
    Rule {
        id: "ambient-state",
        code: "D003",
        scope: Scope::Sim,
        summary: "no `static mut` / `thread_local!` in simulation crates",
        rationale: "Ambient mutable state survives across runs within one process and \
                    differs across threads, so two simulations with the same seed can \
                    diverge. All sim state must live in the simulator structs.",
    },
    Rule {
        id: "unseeded-rng",
        code: "D004",
        scope: Scope::Workspace,
        summary: "no entropy-seeded RNG construction (`from_entropy`, `thread_rng`, `OsRng`)",
        rationale: "Every random stream in the reproduction must be derivable from an \
                    explicit u64 seed; OS entropy makes results unrepeatable. Construct \
                    RNGs with seed_from_u64/from_seed in seeded constructors only.",
    },
    Rule {
        id: "float-int-cast",
        code: "N001",
        scope: Scope::Model,
        summary: "no `as` float→int casts in model code",
        rationale: "`as` truncates toward zero and saturates silently (NaN becomes 0), \
                    turning model quantities into wrong indices or counts without a \
                    trace. Restructure in integer space, or waive with the bound that \
                    makes the cast exact.",
    },
    Rule {
        id: "f32-math",
        code: "N002",
        scope: Scope::Model,
        summary: "no `f32` in energy/power model code",
        rationale: "The paper's model error budget is a few percent; f32's 24-bit \
                    mantissa can eat that in long energy integrations. All model math \
                    is f64 end to end.",
    },
    Rule {
        id: "nan-ord",
        code: "N003",
        scope: Scope::Workspace,
        summary: "no `partial_cmp` call sites (NaN-unsafe ordering)",
        rationale: "`partial_cmp().unwrap()` panics on the first NaN a buggy model \
                    emits, and NaN-propagating sorts scramble quantile buffers \
                    silently. Use f64::total_cmp, which is total over all bit patterns.",
    },
    Rule {
        id: "float-eq",
        code: "N004",
        scope: Scope::SimOrModel,
        summary: "no `==`/`!=` against non-zero float literals",
        rationale: "Exact equality against a computed constant is representation \
                    roulette. Comparisons against literal 0.0 are exempt: IEEE-754 \
                    zero sentinels (`sigma == 0.0` guards) are exact by construction.",
    },
    Rule {
        id: "unit-add",
        code: "U001",
        scope: Scope::SimOrModel,
        summary: "`+`/`-` over operands of unlike physical dimensions",
        rationale: "Identifier suffixes (`_j`, `_w`, `_s`, `_ops`, `_j_per_op`, …) claim \
                    dimensions on the lattice over (J, s, ops, B); adding joules to watts \
                    is the energy-accounting bug the type system cannot see. Inference is \
                    charitable — unsuffixed names unify with anything — so every report \
                    is backed by two explicit unit claims.",
    },
    Rule {
        id: "unit-assign",
        code: "U002",
        scope: Scope::SimOrModel,
        summary: "value of one dimension assigned/returned into a binding suffixed as another",
        rationale: "`let dt_s = power_w;`, `n.energy_j += p_w` and `fn total_j` returning \
                    `W` each break the suffix contract readers and downstream math rely \
                    on. Either the name or the expression is wrong; fix whichever lies. \
                    `*=`/`/=` are exempt (scaling changes dimension by design).",
    },
    Rule {
        id: "unit-cmp",
        code: "U003",
        scope: Scope::SimOrModel,
        summary: "comparison (`<`, `==`, `min`/`max`/`clamp`) across unlike dimensions",
        rationale: "Ordering joules against watts type-checks and always returns *some* \
                    boolean, which is how threshold guards silently compare energy to \
                    power after a refactor. Both sides of a comparison must share a \
                    dimension or leave it unstated.",
    },
    Rule {
        id: "unit-opaque",
        code: "U004",
        scope: Scope::SimOrModel,
        summary: "suffixed binding initialized from a product of unsuffixed names",
        rationale: "`let energy_j = p * dt;` claims joules from factors that claim \
                    nothing — the single most common place a dropped `/ dt_s` or a \
                    W-for-J swap hides. Suffix the factors so inference can verify the \
                    claim, or waive with the conversion spelled out in the reason.",
    },
    Rule {
        id: "lock-reenter",
        code: "C001",
        scope: Scope::Locks,
        summary: "lock acquired while its own guard is still held",
        rationale: "parking_lot mutexes are not reentrant: re-locking on the same thread \
                    — directly, or through a same-file helper that locks — deadlocks at \
                    run time with no compiler diagnostic. Drop the guard first (or pass \
                    it down) before anything that takes the lock again.",
    },
    Rule {
        id: "lock-order",
        code: "C002",
        scope: Scope::Locks,
        summary: "two locks acquired in both orders within one function",
        rationale: "Acquiring `a` then `b` on one path and `b` then `a` on another is \
                    the canonical deadlock-by-interleaving. Pick one acquisition order \
                    per function and keep every path on it.",
    },
    Rule {
        id: "waiver-syntax",
        code: "W001",
        scope: Scope::Workspace,
        summary: "malformed `enprop-lint:` waiver comment",
        rationale: "A waiver must name a known rule and give a reason: \
                    `// enprop-lint: allow(rule-id) -- reason`. A typo'd waiver that \
                    silently fails to suppress (or suppresses nothing) hides intent.",
    },
    Rule {
        id: "stale-waiver",
        code: "W002",
        scope: Scope::Workspace,
        summary: "well-formed waiver that suppresses no finding",
        rationale: "Waivers are point-in-time justifications. When the code they \
                    excused is gone, the leftover comment licenses a *future* violation \
                    on that line unreviewed. Delete stale waivers; `enprop-lint waivers` \
                    lists every active one with its reason.",
    },
];

/// Look up a rule by its stable id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn scope_applies(scope: Scope, krate: &str, rel_path: &str) -> bool {
    // Vendored code is not ours to hold to sim/model hygiene — only the
    // lock rules (whose scope names vendor/rayon explicitly) apply there.
    if rel_path.starts_with("vendor/") {
        return scope == Scope::Locks && lock_scope(rel_path);
    }
    match scope {
        Scope::Sim => SIM_CRATES.contains(&krate),
        Scope::Model => MODEL_CRATES.contains(&krate),
        Scope::SimOrModel => SIM_CRATES.contains(&krate) || MODEL_CRATES.contains(&krate),
        Scope::Workspace => true,
        Scope::Locks => lock_scope(rel_path),
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub code: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Dimension annotation for U-rule findings: `(lhs, rhs)` rendered
    /// through the lattice's canonical names (`"J"`, `"W"`, `"ops/s"`,
    /// `"?"` for unknown). `None` for non-dimensional rules.
    pub dims: Option<(String, String)>,
}

/// A parsed waiver comment (the grammar is spelled out in
/// [`RULES`]' `waiver-syntax` entry and in `--explain waiver-syntax`).
#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    reason: String,
}

/// A waiver as reported outward: what it allows, where, why, and whether
/// it suppressed anything this scan (`used == false` ⇒ a W002 finding).
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub reason: String,
    pub used: bool,
}

const WAIVER_MARKER: &str = "enprop-lint:";

/// Parse waivers out of the comment stream; malformed ones become
/// `waiver-syntax` findings instead of silently doing nothing.
fn parse_waivers(comments: &[Comment], path: &str, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim_start_matches('*').trim();
        let Some(pos) = body.find(WAIVER_MARKER) else {
            continue;
        };
        let directive = body[pos + WAIVER_MARKER.len()..].trim();
        let malformed = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                rule: "waiver-syntax",
                code: "W001",
                path: path.to_string(),
                line: c.line,
                col: 1,
                message: format!("{msg}; expected `enprop-lint: allow(rule-id) -- reason`"),
                dims: None,
            });
        };
        let Some(rest) = directive.strip_prefix("allow(") else {
            malformed("waiver directive is not `allow(...)`", findings);
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed("unclosed `allow(`", findings);
            continue;
        };
        let rule = rest[..close].trim();
        if rule_by_id(rule).is_none() {
            malformed(&format!("unknown rule `{rule}` in waiver"), findings);
            continue;
        }
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            malformed(&format!("waiver for `{rule}` has no `-- reason`"), findings);
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            line: c.line,
            reason: reason.to_string(),
        });
    }
    waivers
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub waived: usize,
    /// Every well-formed waiver in the file, used or not.
    pub waivers: Vec<WaiverRecord>,
}

/// Does waiver `w` suppress finding `f`? Same line, or the line directly
/// above.
fn suppresses(w: &Waiver, f: &Finding) -> bool {
    w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
}

/// Lint one file's source. `rel_path` is workspace-relative with `/`
/// separators; the crate is inferred from it (`crates/<name>/…` → `<name>`,
/// anything else → `root`).
pub fn lint_source(rel_path: &str, src: &str) -> FileReport {
    let krate = crate_of(rel_path);
    let lexed = crate::lexer::lex(src);
    let mut findings = Vec::new();
    let waivers = parse_waivers(&lexed.comments, rel_path, &mut findings);

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        for rule in RULES {
            if !scope_applies(rule.scope, krate, rel_path) {
                continue;
            }
            if let Some(message) = match_rule(rule.id, toks, i, t) {
                findings.push(Finding {
                    rule: rule.id,
                    code: rule.code,
                    path: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message,
                    dims: None,
                });
            }
        }
    }

    // The structural passes run over the token tree.
    let needs_dims = scope_applies(Scope::SimOrModel, krate, rel_path);
    let needs_locks = scope_applies(Scope::Locks, krate, rel_path);
    if needs_dims || needs_locks {
        let trees = crate::tree::build(toks);
        if needs_dims {
            findings.extend(crate::dims::check(rel_path, &trees));
        }
        if needs_locks {
            findings.extend(crate::locks::check(rel_path, src, &trees));
        }
    }

    // Waiver application, tracking which waivers earned their keep.
    let mut used = vec![false; waivers.len()];
    let mut kept = Vec::new();
    let mut waived = 0usize;
    for f in findings {
        let mut hit = false;
        for (wi, w) in waivers.iter().enumerate() {
            if suppresses(w, &f) {
                used[wi] = true;
                hit = true;
            }
        }
        if hit {
            waived += 1;
        } else {
            kept.push(f);
        }
    }

    // W002: a well-formed waiver that suppressed nothing is itself a
    // finding — waivable in turn by a `stale-waiver` waiver (a deliberate
    // "this fires only under feature X" escape hatch).
    let mut stale = Vec::new();
    for (wi, w) in waivers.iter().enumerate() {
        if used[wi] || w.rule == "stale-waiver" {
            continue;
        }
        stale.push(Finding {
            rule: "stale-waiver",
            code: "W002",
            path: rel_path.to_string(),
            line: w.line,
            col: 1,
            message: format!(
                "waiver for `{}` suppresses nothing; delete it (reason was: {})",
                w.rule, w.reason
            ),
            dims: None,
        });
    }
    for f in stale {
        let mut hit = false;
        for (wi, w) in waivers.iter().enumerate() {
            if w.rule == "stale-waiver" && suppresses(w, &f) {
                used[wi] = true;
                hit = true;
            }
        }
        if hit {
            waived += 1;
        } else {
            kept.push(f);
        }
    }

    let records = waivers
        .into_iter()
        .zip(used)
        .map(|(w, used)| WaiverRecord {
            rule: w.rule,
            path: rel_path.to_string(),
            line: w.line,
            reason: w.reason,
            used,
        })
        .collect();
    FileReport {
        findings: kept,
        waived,
        waivers: records,
    }
}

/// Crate short name for a workspace-relative path.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("root")
    } else {
        "root"
    }
}

fn ident_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// `a :: b` — `a` at i, `b` expected two puncts later.
fn path_seg(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(toks, i, a) && punct_at(toks, i + 1, ":") && punct_at(toks, i + 2, ":") && ident_at(toks, i + 3, b)
}

const INT_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Methods that exist (with these names) only on floats: a call chain
/// ending in one of these, cast to an int type, is a float→int cast.
const FLOAT_METHODS: &[&str] = &[
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "sqrt",
    "cbrt",
    "exp",
    "exp2",
    "ln",
    "log2",
    "log10",
    "powf",
    "powi",
    "recip",
    "signum",
    "mul_add",
    "to_degrees",
    "to_radians",
];

fn float_literal_value(text: &str) -> Option<f64> {
    let cleaned: String = text.replace('_', "");
    let cleaned = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('f');
    cleaned.parse::<f64>().ok()
}

/// Dispatch one rule against position `i`. Returns the finding message on
/// a match. Waiver-syntax findings are produced during waiver parsing, not
/// here.
fn match_rule(rule: &str, toks: &[Token], i: usize, t: &Token) -> Option<String> {
    match rule {
        "wall-clock" => match_wall_clock(toks, i, t),
        "map-iter" => match_map_iter(t),
        "ambient-state" => match_ambient_state(toks, i, t),
        "unseeded-rng" => match_unseeded_rng(t),
        "float-int-cast" => match_float_int_cast(toks, i, t),
        "f32-math" => match_f32(t),
        "nan-ord" => match_nan_ord(toks, i, t),
        "float-eq" => match_float_eq(toks, i, t),
        _ => None,
    }
}

fn match_wall_clock(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    if t.kind != TokKind::Ident {
        return None;
    }
    if t.text == "SystemTime" {
        return Some("`SystemTime` reads the host clock; simulation time is the f64 event clock".into());
    }
    if path_seg(toks, i, "Instant", "now") {
        return Some("`Instant::now()` reads the host clock; derive times from sim state".into());
    }
    None
}

fn match_map_iter(t: &Token) -> Option<String> {
    if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
        return Some(format!(
            "`{}` iterates in RandomState order; use BTreeMap/BTreeSet or an index-keyed Vec",
            t.text
        ));
    }
    None
}

fn match_ambient_state(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    if t.kind != TokKind::Ident {
        return None;
    }
    if t.text == "static" && ident_at(toks, i + 1, "mut") {
        return Some("`static mut` is ambient sim state; keep state in the simulator structs".into());
    }
    if t.text == "thread_local" {
        return Some("`thread_local!` state differs per thread; keep state in the simulator structs".into());
    }
    None
}

fn match_unseeded_rng(t: &Token) -> Option<String> {
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "from_entropy" | "thread_rng" | "OsRng" => Some(format!(
            "`{}` draws OS entropy; construct RNGs from an explicit u64 seed",
            t.text
        )),
        _ => None,
    }
}

fn match_f32(t: &Token) -> Option<String> {
    match t.kind {
        TokKind::Ident if t.text == "f32" => {
            Some("f32 in model code; the error budget requires f64 end to end".into())
        }
        TokKind::Float if t.text.ends_with("f32") => {
            Some("f32 literal in model code; the error budget requires f64 end to end".into())
        }
        _ => None,
    }
}

fn match_nan_ord(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    if t.kind != TokKind::Ident || t.text != "partial_cmp" {
        return None;
    }
    // `fn partial_cmp` is a PartialOrd impl, not a call site.
    if i >= 1 && ident_at(toks, i - 1, "fn") {
        return None;
    }
    // Flag `.partial_cmp(` and `T::partial_cmp` (function reference passed
    // to a sort); a bare mention in a `use` list is harmless and rare.
    let after_dot = i >= 1 && punct_at(toks, i - 1, ".");
    let after_path = i >= 2 && punct_at(toks, i - 1, ":") && punct_at(toks, i - 2, ":");
    if after_dot || after_path {
        return Some("NaN-unsafe ordering via `partial_cmp`; use f64::total_cmp".into());
    }
    None
}

/// `==` / `!=` where either operand is a non-zero float literal. Only the
/// first `=` of the operator reports, and compound operators (`<=`, `>=`,
/// `+=` …) are excluded by inspecting the preceding token.
fn match_float_eq(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    let first = &t.text;
    if t.kind != TokKind::Punct || !(first == "=" || first == "!") {
        return None;
    }
    if !punct_at(toks, i + 1, "=") {
        return None;
    }
    if first == "=" {
        // Exclude `<=` `>=` `!=` (handled at the `!`) `==`'s second char,
        // and fat arrows / compound assignment.
        if i >= 1
            && toks[i - 1].kind == TokKind::Punct
            && matches!(toks[i - 1].text.as_str(), "<" | ">" | "!" | "=" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
        {
            return None;
        }
        // `== =` never occurs; `===` is not Rust. `a == b`: second `=` must
        // not itself begin another operator — i+2 may be anything.
    }
    let neighbor_float = |tok: Option<&Token>| {
        tok.and_then(|n| {
            if n.kind == TokKind::Float {
                float_literal_value(&n.text)
            } else {
                None
            }
        })
    };
    let lhs = neighbor_float(i.checked_sub(1).and_then(|j| toks.get(j)));
    let rhs = neighbor_float(toks.get(i + 2));
    for v in [lhs, rhs].into_iter().flatten() {
        if v != 0.0 {
            return Some(format!(
                "exact float comparison against {v}; compare with an epsilon or restructure \
                 (literal 0.0 sentinels are exempt)"
            ));
        }
    }
    None
}

/// Walk back from the token before `as` to decide whether the cast source
/// is float-valued; purely lexical, so only provably-float shapes report.
fn match_float_int_cast(toks: &[Token], i: usize, t: &Token) -> Option<String> {
    if t.kind != TokKind::Ident || t.text != "as" {
        return None;
    }
    let target = toks.get(i + 1)?;
    if target.kind != TokKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
        return None;
    }
    let prev = toks.get(i.checked_sub(1)?)?;
    let reason = match prev.kind {
        TokKind::Float => Some("a float literal".to_string()),
        TokKind::Ident if prev.text == "f64" || prev.text == "f32" => {
            // `x as f64 as usize`
            Some(format!("an `as {}` cast", prev.text))
        }
        TokKind::Punct if prev.text == ")" => {
            let open = matching_open_paren(toks, i - 1)?;
            // `.floor() as usize` — method call on the chain.
            if open >= 2 && punct_at(toks, open - 2, ".") {
                let m = &toks[open - 1];
                if m.kind == TokKind::Ident && FLOAT_METHODS.contains(&m.text.as_str()) {
                    Some(format!("a `.{}()` call", m.text))
                } else {
                    None
                }
            } else if open == 0 || toks[open - 1].kind == TokKind::Punct {
                // `( … ) as usize` — a parenthesized group (not a call):
                // float-valued if it mentions a float literal or f64/f32.
                let inner = &toks[open + 1..i - 1];
                let has_float = inner.iter().any(|x| {
                    x.kind == TokKind::Float
                        || (x.kind == TokKind::Ident && (x.text == "f64" || x.text == "f32"))
                });
                has_float.then(|| "a parenthesized float expression".to_string())
            } else {
                None
            }
        }
        _ => None,
    }?;
    Some(format!(
        "float→int `as {}` cast of {reason}: `as` truncates and saturates silently; \
         restructure in integer space or waive with the bound that makes it exact",
        target.text
    ))
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open_paren(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        let t = &toks[j];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}
