//! The unit-dimension inference pass: U001–U004.
//!
//! Walks the [`spine`](crate::spine) statements of a file, assigns each
//! recognized expression a dimension from the [`units`](crate::units)
//! suffix grammar, and flags incoherent combinations:
//!
//! * **U001 `unit-add`** — `+`/`-` over operands of two *different known*
//!   dimensions (`energy_j + idle_w`);
//! * **U002 `unit-assign`** — a value of known dimension flowing into a
//!   suffixed binding of a different dimension (`let dt_s = power_w;`,
//!   `n.energy_j += p_w`, `return busy_w` from `fn energy_j()`);
//! * **U003 `unit-cmp`** — an ordering/equality comparison across two
//!   different known dimensions (also `min`/`max`/`clamp` arguments);
//! * **U004 `unit-opaque`** — a suffixed binding initialized from a bare
//!   product/quotient of unsuffixed names (`let energy_j = p * dt;`) — the
//!   claim is unverifiable, so name the factors or waive with the
//!   conversion spelled out.
//!
//! Inference is *charitable*: an unsuffixed name unifies with anything, a
//! literal is dimensionless only where that is safe (as a scale factor in
//! `*`/`/`), and any expression the spine does not model is unknown. A
//! parse limitation can therefore suppress a finding but never invent one.

use crate::rules::Finding;
use crate::spine::{self, AssignOp, BinOp, Expr, Pos, Stmt};
use crate::tree::{Delim, Tree};
use crate::units::{dim_of_ident, Dim, DIMLESS};

/// Methods that preserve the receiver's dimension.
const DIM_PRESERVING: &[&str] = &[
    "abs", "floor", "ceil", "round", "trunc", "copysign", "clone", "to_owned",
];

/// Methods that escape the lattice (fractional or data-dependent
/// exponents) or whose result has nothing to do with the receiver's
/// dimension: the result is unknown.
const DIM_ERASING: &[&str] = &[
    "sqrt", "cbrt", "powi", "powf", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2",
    "log10", "hypot", "signum", "len", "iter", "into_iter", "unwrap", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "expect", "sum", "product", "collect", "map",
    "and_then", "get", "min_by", "max_by", "fold", "sin", "cos", "tan", "atan2", "mul_add",
];

struct Ctx<'a> {
    path: &'a str,
    out: Vec<Finding>,
}

impl Ctx<'_> {
    fn emit(
        &mut self,
        rule: &'static str,
        code: &'static str,
        pos: Pos,
        message: String,
        dims: Option<(String, String)>,
    ) {
        self.out.push(Finding {
            rule,
            code,
            path: self.path.to_string(),
            line: pos.line,
            col: pos.col,
            message,
            dims,
        });
    }

    fn u001(&mut self, pos: Pos, a: Dim, b: Dim) {
        self.emit(
            "unit-add",
            "U001",
            pos,
            format!("adding/subtracting unlike dimensions: `{a}` and `{b}`"),
            Some((a.to_string(), b.to_string())),
        );
    }

    fn u003(&mut self, pos: Pos, a: Dim, b: Dim, what: &str) {
        self.emit(
            "unit-cmp",
            "U003",
            pos,
            format!("{what} across unlike dimensions: `{a}` vs `{b}`"),
            Some((a.to_string(), b.to_string())),
        );
    }
}

/// Run the U-rules over a file's token tree. `path` is the workspace-
/// relative path carried into findings.
pub fn check(path: &str, trees: &[Tree]) -> Vec<Finding> {
    let mut ctx = Ctx {
        path,
        out: Vec::new(),
    };
    check_level(trees, None, false, &mut ctx);
    // Group recursion and expression parsing can visit the same source
    // region twice (a paren group is both an expression operand and a
    // recursion target); keep one finding per site.
    let mut out = ctx.out;
    out.sort_by(|a, b| {
        (a.line, a.col, a.code)
            .cmp(&(b.line, b.col, b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    out.dedup_by(|a, b| a.code == b.code && a.line == b.line && a.col == b.col);
    out
}

/// Walk one group level. `fn_dim` is the dimension claimed by the
/// enclosing function's name suffix (checked against `return` statements
/// everywhere in the body, and against the trailing expression when
/// `is_fn_body` marks the body's top level).
fn check_level(trees: &[Tree], fn_dim: Option<Dim>, is_fn_body: bool, ctx: &mut Ctx<'_>) {
    let stmts = spine::statements(trees);
    let n_stmts = stmts.len();
    let trailing = is_fn_body && spine::has_trailing_expr(trees);
    // Brace groups consumed as fn bodies — the generic group recursion
    // below must not revisit them under the *outer* fn's dimension.
    let mut fn_bodies: Vec<u32> = Vec::new();

    for (idx, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::FnSig { name, body } => {
                if let Some(body) = body {
                    fn_bodies.push(body.open.lo);
                    let fd = dim_of_ident(name);
                    check_level(&body.children, fd, true, ctx);
                }
            }
            Stmt::Let { name, pos, init } => {
                if let Some(init) = init {
                    let vd = infer(init, ctx);
                    if let Some(name) = name {
                        check_binding(name, *pos, init, vd, true, ctx);
                    }
                }
            }
            Stmt::Assign {
                target,
                op,
                value,
                pos,
            } => {
                let vd = infer(value, ctx);
                infer(target, ctx);
                let dim_relevant = matches!(
                    op,
                    AssignOp::Assign | AssignOp::AddAssign | AssignOp::SubAssign
                );
                if dim_relevant {
                    if let Some(name) = target_name(target) {
                        check_binding(&name, *pos, value, vd, true, ctx);
                    }
                }
            }
            Stmt::Field { name, pos, value } => {
                let vd = infer(value, ctx);
                // Struct-literal fields get U002 only: a field list mixes
                // many short initializers, and U004 there would punish
                // every plain `energy_j: e` rebinding.
                check_binding(name, *pos, value, vd, false, ctx);
            }
            Stmt::Return { value, pos } => {
                if let Some(value) = value {
                    let vd = infer(value, ctx);
                    if let (Some(fd), Some(vd)) = (fn_dim, vd) {
                        if fd != vd {
                            ctx.emit(
                                "unit-assign",
                                "U002",
                                *pos,
                                format!(
                                    "returning `{vd}` from a function whose name claims `{fd}`"
                                ),
                                Some((fd.to_string(), vd.to_string())),
                            );
                        }
                    }
                }
            }
            Stmt::Exprs(exprs) => {
                for (k, e) in exprs.iter().enumerate() {
                    let vd = infer(e, ctx);
                    // Trailing expression of a fn body: an implicit return.
                    if trailing && idx == n_stmts - 1 && k == exprs.len() - 1 {
                        if let (Some(fd), Some(vd)) = (fn_dim, vd) {
                            if fd != vd {
                                ctx.emit(
                                    "unit-assign",
                                    "U002",
                                    e.pos(),
                                    format!(
                                        "function name claims `{fd}` but its result is `{vd}`"
                                    ),
                                    Some((fd.to_string(), vd.to_string())),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    for tree in trees {
        if let Tree::Group(g) = tree {
            if g.delim == Delim::Brace && fn_bodies.contains(&g.open.lo) {
                continue;
            }
            check_level(&g.children, fn_dim, false, ctx);
        }
    }
}

/// U002/U004 for a value flowing into a named binding.
fn check_binding(
    name: &str,
    pos: Pos,
    value: &Expr,
    vd: Option<Dim>,
    allow_u004: bool,
    ctx: &mut Ctx<'_>,
) {
    let Some(td) = dim_of_ident(name) else { return };
    match vd {
        Some(vd) if vd != td => {
            ctx.emit(
                "unit-assign",
                "U002",
                pos,
                format!("`{name}` is `{td}` but receives a value of dimension `{vd}`"),
                Some((td.to_string(), vd.to_string())),
            );
        }
        Some(_) => {}
        None if allow_u004 => {
            let mut unsuffixed = Vec::new();
            if opaque_product(value, &mut unsuffixed) && !unsuffixed.is_empty() {
                ctx.emit(
                    "unit-opaque",
                    "U004",
                    pos,
                    format!(
                        "`{name}` claims `{td}` from a product of unsuffixed names ({}); \
                         suffix the factors or waive with the conversion spelled out",
                        unsuffixed.join(", ")
                    ),
                    Some((td.to_string(), "?".to_string())),
                );
            }
        }
        None => {}
    }
}

/// The last path segment of an assignment target, if it is a plain
/// path/field chain (`n.energy_j`, `self.win_busy_j`, `buf[i].t_s`).
fn target_name(target: &Expr) -> Option<String> {
    match target {
        Expr::Path { last, .. } => Some(last.clone()),
        // `buf[i].t_s` parses as Method-less chains through Index; a field
        // access on a non-path receiver lands in Method with no args.
        Expr::Method { method, args, .. } if args.is_empty() => Some(method.clone()),
        Expr::Index { recv, .. } | Expr::Unary { inner: recv, .. } => target_name(recv),
        _ => None,
    }
}

/// Well-known numeric sentinel constants: they behave like literals for
/// U004 purposes (`f64::INFINITY` is not a unit claim gone missing).
const SENTINEL_CONSTS: &[&str] = &[
    "NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX", "MIN", "MIN_POSITIVE",
];

/// Is this expression a bare product/quotient over names and literals —
/// the U004 shape? Collects the unsuffixed names seen.
fn opaque_product(e: &Expr, unsuffixed: &mut Vec<String>) -> bool {
    match e {
        Expr::Path { last, .. } => {
            if dim_of_ident(last).is_none() && !SENTINEL_CONSTS.contains(&last.as_str()) {
                unsuffixed.push(last.clone());
            }
            true
        }
        Expr::Lit { .. } => true,
        Expr::Paren { inner, .. } | Expr::Unary { inner, .. } | Expr::Cast { inner, .. } => {
            opaque_product(inner, unsuffixed)
        }
        Expr::Index { recv, .. } => opaque_product(recv, unsuffixed),
        Expr::Binary {
            op: BinOp::Mul | BinOp::Div,
            lhs,
            rhs,
            ..
        } => opaque_product(lhs, unsuffixed) && opaque_product(rhs, unsuffixed),
        _ => false,
    }
}

/// A factor's dimension in `*`/`/` context: literals act as dimensionless
/// scale constants there (so `p_w * 3600.0` stays `W` — a literal that is
/// *really* a unit quantity should be a suffixed `const`).
fn factor_dim(e: &Expr, d: Option<Dim>) -> Option<Dim> {
    d.or_else(|| match strip(e) {
        Expr::Lit { .. } => Some(DIMLESS),
        _ => None,
    })
}

/// Peel dimension-transparent wrappers for shape inspection.
fn strip(e: &Expr) -> &Expr {
    match e {
        Expr::Paren { inner, .. } | Expr::Unary { inner, .. } | Expr::Cast { inner, .. } => {
            strip(inner)
        }
        _ => e,
    }
}

/// Infer an expression's dimension, emitting U001/U003 along the way.
/// `None` means unknown — it unifies with anything.
fn infer(e: &Expr, ctx: &mut Ctx<'_>) -> Option<Dim> {
    match e {
        Expr::Lit { .. } | Expr::Opaque { .. } => None,
        Expr::Path { last, .. } => dim_of_ident(last),
        Expr::Call { last, args, .. } => {
            for a in args {
                infer(a, ctx);
            }
            dim_of_ident(last)
        }
        Expr::Method {
            recv,
            method,
            args,
            pos,
        } => {
            let rd = infer(recv, ctx);
            let ads: Vec<Option<Dim>> = args.iter().map(|a| infer(a, ctx)).collect();
            match method.as_str() {
                m if DIM_PRESERVING.contains(&m) => rd,
                "recip" => rd.map(Dim::recip),
                "min" | "max" | "clamp" => {
                    // Comparison semantics: every argument must share the
                    // receiver's dimension.
                    let mut best = rd;
                    for ad in ads.into_iter().flatten() {
                        match best {
                            Some(b) if b != ad => {
                                let what = format!("`{method}`");
                                ctx.u003(*pos, b, ad, &what);
                            }
                            Some(_) => {}
                            None => best = Some(ad),
                        }
                    }
                    best
                }
                m if DIM_ERASING.contains(&m) => None,
                // Accessor convention: `node.busy_power_w(u)` claims `W`
                // through its own suffix, like a path would.
                m => dim_of_ident(m),
            }
        }
        Expr::Index { recv, .. } => infer(recv, ctx),
        Expr::Paren { inner, .. } | Expr::Unary { inner, .. } => infer(inner, ctx),
        Expr::Cast { inner, ty, .. } => {
            let d = infer(inner, ctx);
            if is_numeric_ty(ty) {
                d
            } else {
                None
            }
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let ld = infer(lhs, ctx);
            let rd = infer(rhs, ctx);
            match op {
                // A product with no known factor stays unknown: literals
                // only *scale* a known dimension (`256.0 * 1024.0` is a
                // byte count in context, not a dimensionless claim).
                BinOp::Mul if ld.is_none() && rd.is_none() => None,
                BinOp::Div if ld.is_none() && rd.is_none() => None,
                BinOp::Mul => Some(factor_dim(lhs, ld)? * factor_dim(rhs, rd)?),
                BinOp::Div => Some(factor_dim(lhs, ld)? / factor_dim(rhs, rd)?),
                BinOp::Rem => ld,
                BinOp::Add | BinOp::Sub => match (ld, rd) {
                    (Some(a), Some(b)) => {
                        if a != b {
                            ctx.u001(*pos, a, b);
                        }
                        Some(a)
                    }
                    // Charitable: a known operand propagates through an
                    // unknown one.
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                },
                op if op.is_comparison() => {
                    if let (Some(a), Some(b)) = (ld, rd) {
                        if a != b {
                            ctx.u003(*pos, a, b, "comparison");
                        }
                    }
                    None
                }
                _ => None,
            }
        }
    }
}

fn is_numeric_ty(ty: &str) -> bool {
    matches!(
        ty,
        "f64" | "f32" | "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32"
            | "i64" | "i128" | "isize"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn findings(src: &str) -> Vec<Finding> {
        check("test.rs", &build(&lex(src).tokens))
    }

    fn codes(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.code).collect()
    }

    #[test]
    fn u001_add_of_unlike_dims() {
        assert_eq!(codes("let x = energy_j + idle_w;"), vec!["U001"]);
        assert_eq!(codes("let x = energy_j - drain_j;"), Vec::<&str>::new());
        // Charitable: unknown operand unifies.
        assert_eq!(codes("let x = energy_j + leftover;"), Vec::<&str>::new());
    }

    #[test]
    fn u001_through_mul() {
        // W * s = J, J + J fine.
        assert_eq!(
            codes("let total_j = idle_w * dt_s + busy_j;"),
            Vec::<&str>::new()
        );
        // W * s = J, J + W fires.
        assert_eq!(codes("let x = idle_w * dt_s + busy_w;"), vec!["U001"]);
    }

    #[test]
    fn u002_let_and_assign() {
        assert_eq!(codes("let dt_s = total_power_w;"), vec!["U002"]);
        assert_eq!(codes("n.energy_j += busy_power_w;"), vec!["U002"]);
        assert_eq!(
            codes("n.energy_j += busy_power_w * dt_s;"),
            Vec::<&str>::new()
        );
        // `*=` by a plain factor is a scale, not a dimension change.
        assert_eq!(codes("n.energy_j *= derate_frac;"), Vec::<&str>::new());
    }

    #[test]
    fn u002_return_and_trailing() {
        assert_eq!(
            codes("fn total_j(&self) -> f64 { return self.busy_w; }"),
            vec!["U002"]
        );
        assert_eq!(
            codes("fn total_j(&self) -> f64 { self.busy_w * self.dt_s }"),
            Vec::<&str>::new()
        );
        assert_eq!(
            codes("fn total_j(&self) -> f64 { self.busy_w }"),
            vec!["U002"]
        );
    }

    #[test]
    fn u003_comparison() {
        assert_eq!(codes("if energy_j > idle_w { x() }"), vec!["U003"]);
        assert_eq!(codes("if energy_j > cap_j { x() }"), Vec::<&str>::new());
        assert_eq!(codes("let x = peak_w.max(floor_w);"), Vec::<&str>::new());
        assert_eq!(codes("let x = peak_w.max(floor_j);"), vec!["U003"]);
    }

    #[test]
    fn u004_opaque_product() {
        assert_eq!(codes("let energy_j = p * dt;"), vec!["U004"]);
        assert_eq!(codes("let energy_j = p_w * dt;"), vec!["U004"]);
        assert_eq!(codes("let energy_j = p_w * dt_s;"), Vec::<&str>::new());
        // A call is not the U004 shape: the value may well be right.
        assert_eq!(codes("let energy_j = node.drain(dt);"), Vec::<&str>::new());
        // A plain rebind of an unsuffixed name still counts.
        assert_eq!(codes("let energy_j = acc;"), vec!["U004"]);
    }

    #[test]
    fn literals_scale_in_products_only() {
        assert_eq!(codes("let p_kw = p_w / 1000.0;"), Vec::<&str>::new());
        // Addition with a literal stays unknown on that side.
        assert_eq!(codes("let p_w = idle_w + 0.5;"), Vec::<&str>::new());
        // A product of pure literals adopts its context's dimension: no
        // U002 on `working_set_bytes: 256.0 * 1024.0`.
        assert_eq!(codes("C { working_set_bytes: 256.0 * 1024.0, }"), Vec::<&str>::new());
    }

    #[test]
    fn misparse_shapes_stay_silent() {
        // Control-flow initializers, macros and turbofished methods must
        // not surface their scraps as U004 products.
        assert_eq!(
            codes("let ideal_j = if busy { dt_s * peak_w } else { 0.0 };"),
            Vec::<&str>::new()
        );
        assert_eq!(codes("let total_bytes = vec![0u8; 256];"), Vec::<&str>::new());
        assert_eq!(codes("lost_ops += share_ops * rng.gen::<f64>();"), Vec::<&str>::new());
    }

    #[test]
    fn nested_fn_dims_do_not_leak() {
        // Inner fn's body is checked against the inner name only; the
        // outer trailing expression is checked against the outer name.
        let src =
            "fn outer_j() -> f64 { fn inner_w() -> f64 { self.p_w } inner_w() * self.dt_s }";
        assert_eq!(codes(src), Vec::<&str>::new());
        let bad = "fn outer_j() -> f64 { fn inner_w() -> f64 { self.p_w } inner_w() }";
        assert_eq!(codes(bad), vec!["U002"]);
    }

    #[test]
    fn struct_field_mismatch() {
        assert_eq!(codes("Node { energy_j: idle_w, }"), vec!["U002"]);
        assert_eq!(codes("Node { energy_j: acc, }"), Vec::<&str>::new());
    }

    #[test]
    fn findings_carry_dim_annotations() {
        let f = findings("let dt_s = total_power_w;");
        assert_eq!(f[0].dims, Some(("s".to_string(), "W".to_string())));
    }
}
