//! Nested token trees: brace/paren/bracket groups over the flat [`Token`]
//! stream, with byte-accurate spans inherited from the lexer.
//!
//! The builder is forgiving by construction — a linter must never crash or
//! drop tokens on the code it scans. Unbalanced input degrades gracefully:
//! a stray closer that matches no open delimiter becomes a leaf, a closer
//! that matches an *outer* open delimiter implicitly closes the groups in
//! between, and groups still open at end of file are closed without a
//! closing token. In every case [`flatten`] returns exactly the original
//! token stream in order (the round-trip property pinned by
//! `tests/tree_props.rs`).

use crate::lexer::{TokKind, Token};

/// Delimiter class of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    fn of_open(text: &str) -> Option<Delim> {
        match text {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn of_close(text: &str) -> Option<Delim> {
        match text {
            ")" => Some(Delim::Paren),
            "]" => Some(Delim::Bracket),
            "}" => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and everything inside it.
    Group(Group),
}

impl Tree {
    /// The (line, col) where this node starts.
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Tree::Leaf(t) => (t.line, t.col),
            Tree::Group(g) => (g.open.line, g.open.col),
        }
    }
}

/// A delimited group: `open` is the delimiter token, `close` is `None`
/// when the group was still open at end of file (or was implicitly closed
/// by an outer delimiter).
#[derive(Debug, Clone)]
pub struct Group {
    pub delim: Delim,
    pub open: Token,
    pub close: Option<Token>,
    pub children: Vec<Tree>,
}

struct Open {
    delim: Delim,
    open: Token,
    children: Vec<Tree>,
}

/// Build the token tree for a token stream.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut stack: Vec<Open> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();

    let push = |stack: &mut Vec<Open>, top: &mut Vec<Tree>, tree: Tree| {
        match stack.last_mut() {
            Some(open) => open.children.push(tree),
            None => top.push(tree),
        }
    };

    for tok in tokens {
        if tok.kind != TokKind::Punct {
            push(&mut stack, &mut top, Tree::Leaf(tok.clone()));
            continue;
        }
        if let Some(delim) = Delim::of_open(&tok.text) {
            stack.push(Open {
                delim,
                open: tok.clone(),
                children: Vec::new(),
            });
        } else if let Some(delim) = Delim::of_close(&tok.text) {
            // Find the innermost open group this closer matches.
            match stack.iter().rposition(|o| o.delim == delim) {
                Some(at) => {
                    // Implicitly close anything opened more recently.
                    while stack.len() > at + 1 {
                        let orphan = match stack.pop() {
                            Some(o) => o,
                            None => break,
                        };
                        push(
                            &mut stack,
                            &mut top,
                            Tree::Group(Group {
                                delim: orphan.delim,
                                open: orphan.open,
                                close: None,
                                children: orphan.children,
                            }),
                        );
                    }
                    if let Some(open) = stack.pop() {
                        push(
                            &mut stack,
                            &mut top,
                            Tree::Group(Group {
                                delim: open.delim,
                                open: open.open,
                                close: Some(tok.clone()),
                                children: open.children,
                            }),
                        );
                    }
                }
                // A closer with no matching open delimiter: keep it as a
                // leaf so nothing is lost.
                None => push(&mut stack, &mut top, Tree::Leaf(tok.clone())),
            }
        } else {
            push(&mut stack, &mut top, Tree::Leaf(tok.clone()));
        }
    }

    // Close anything still open at end of file.
    while let Some(open) = stack.pop() {
        push(
            &mut stack,
            &mut top,
            Tree::Group(Group {
                delim: open.delim,
                open: open.open,
                close: None,
                children: open.children,
            }),
        );
    }
    top
}

/// Flatten a token tree back into its token stream (the inverse of
/// [`build`]; exact for arbitrary input, balanced or not).
pub fn flatten(trees: &[Tree]) -> Vec<Token> {
    let mut out = Vec::new();
    flatten_into(trees, &mut out);
    out
}

fn flatten_into(trees: &[Tree], out: &mut Vec<Token>) {
    for tree in trees {
        match tree {
            Tree::Leaf(t) => out.push(t.clone()),
            Tree::Group(g) => {
                out.push(g.open.clone());
                flatten_into(&g.children, out);
                if let Some(close) = &g.close {
                    out.push(close.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn roundtrips(src: &str) {
        let toks = lex(src).tokens;
        let tree = build(&toks);
        let flat = flatten(&tree);
        assert_eq!(toks.len(), flat.len(), "token count changed for {src:?}");
        for (a, b) in toks.iter().zip(flat.iter()) {
            assert_eq!((a.kind, &a.text, a.lo, a.hi), (b.kind, &b.text, b.lo, b.hi));
        }
    }

    #[test]
    fn nests_groups() {
        let toks = lex("fn f(a: u8) { g([1, 2]); }").tokens;
        let tree = build(&toks);
        // fn, f, (…), {…}
        assert_eq!(tree.len(), 4);
        match &tree[3] {
            Tree::Group(g) => {
                assert_eq!(g.delim, Delim::Brace);
                assert!(g.close.is_some());
            }
            other => panic!("expected brace group, got {other:?}"),
        }
    }

    #[test]
    fn balanced_roundtrip() {
        roundtrips("fn f(a: u8) -> Vec<u8> { g([1, 2], (3, 4)); }");
    }

    #[test]
    fn unbalanced_roundtrip() {
        roundtrips("fn f( { ) } ]");
        roundtrips(") } ]");
        roundtrips("( [ {");
        roundtrips("a ( b [ c } d");
    }

    #[test]
    fn stray_closer_is_leaf() {
        let toks = lex(") a").tokens;
        let tree = build(&toks);
        assert!(matches!(&tree[0], Tree::Leaf(t) if t.text == ")"));
    }
}
