//! Lock-discipline rules C001/C002 over the workspace's locking surface
//! ([`Scope::Locks`](crate::rules::Scope)): the vendored `rayon` stub, the
//! `obs` crate, and the explore result cache.
//!
//! * **C001 `lock-reenter`** — a lock is acquired while a guard for the
//!   *same* lock path is still live in the function: directly
//!   (`let g = m.lock(); m.lock();`) or through a call to a same-file
//!   function that acquires it. parking_lot mutexes are not reentrant, so
//!   this is a guaranteed self-deadlock, not a style issue.
//! * **C002 `lock-order`** — two lock paths acquired in both orders within
//!   one function (`a` then `b` on one path, `b` then `a` on another).
//!
//! Locks are identified by the receiver path text of `.lock()` calls
//! (plus `.read()`/`.write()` in files that mention `RwLock`), e.g.
//! `self.inner` or `source`. Guard liveness is let-binding scoped: a
//! let-bound guard lives to the end of its enclosing block or an explicit
//! `drop(name)`; a temporary guard (`m.lock().push(x)`) is released at the
//! end of its statement and is never "held" here. Like the dimension pass,
//! the walk only reasons about shapes the spine recovered, so a parse
//! limitation can suppress a finding but never invent one.

use crate::rules::Finding;
use crate::spine::{self, Expr, Pos, Stmt};
use crate::tree::{Delim, Group, Tree};

/// A live guard: which lock path it protects and the binding name (if
/// let-bound; `None` never occurs for held entries today but keeps the
/// `drop()` handling honest).
struct Held {
    lock: String,
    guard: String,
}

struct Ctx<'a> {
    path: &'a str,
    has_rwlock: bool,
    out: Vec<Finding>,
    /// Ordered (first, second, pos) acquisition pairs for the current fn.
    pairs: Vec<(String, String, Pos)>,
}

/// Run the C-rules over one file.
pub fn check(path: &str, src: &str, trees: &[Tree]) -> Vec<Finding> {
    let mut fns: Vec<(String, &Group)> = Vec::new();
    collect_fns(trees, &mut fns);

    let has_rwlock = src.contains("RwLock");
    // Map fn name → lock paths it acquires anywhere in its body, for the
    // re-enter-through-helper case. Same-file only, by design: cross-file
    // call graphs are beyond a lexical pass.
    let fn_locks: Vec<(String, Vec<String>)> = fns
        .iter()
        .map(|(name, body)| {
            let mut acq = Vec::new();
            collect_acquisitions(&body.children, has_rwlock, &mut acq);
            let mut locks: Vec<String> = acq.into_iter().map(|(l, _)| l).collect();
            locks.sort();
            locks.dedup();
            (name.clone(), locks)
        })
        .collect();

    let mut ctx = Ctx {
        path,
        has_rwlock,
        out: Vec::new(),
        pairs: Vec::new(),
    };
    for (_, body) in &fns {
        ctx.pairs.clear();
        let mut held = Vec::new();
        walk_block(&body.children, &mut held, &fn_locks, &mut ctx);
        // C002: both orders present within this one function.
        for i in 0..ctx.pairs.len() {
            let (a, b, pos) = &ctx.pairs[i];
            let reversed = ctx
                .pairs
                .iter()
                .find(|(x, y, _)| x == b && y == a);
            if let Some((_, _, rpos)) = reversed {
                // Report once per unordered pair, at the later site.
                if (a.as_str(), pos.line) > (b.as_str(), rpos.line) {
                    ctx.out.push(Finding {
                        rule: "lock-order",
                        code: "C002",
                        path: path.to_string(),
                        line: pos.line,
                        col: pos.col,
                        message: format!(
                            "locks `{a}` and `{b}` acquired in both orders in this \
                             function (`{b}` → `{a}` at line {}); pick one order",
                            rpos.line
                        ),
                        dims: None,
                    });
                }
            }
        }
    }

    let mut out = ctx.out;
    out.sort_by(|a, b| (a.line, a.col, a.code, &a.message).cmp(&(b.line, b.col, b.code, &b.message)));
    out.dedup_by(|a, b| a.code == b.code && a.line == b.line && a.col == b.col);
    out
}

/// Collect `(name, body)` for every `fn` at any nesting depth.
fn collect_fns<'a>(trees: &'a [Tree], out: &mut Vec<(String, &'a Group)>) {
    let mut fn_bodies: Vec<u32> = Vec::new();
    for stmt in spine::statements(trees) {
        if let Stmt::FnSig {
            name,
            body: Some(body),
        } = stmt
        {
            fn_bodies.push(body.open.lo);
            out.push((name, body));
            collect_fns(&body.children, out);
        }
    }
    for tree in trees {
        if let Tree::Group(g) = tree {
            if g.delim == Delim::Brace && fn_bodies.contains(&g.open.lo) {
                continue;
            }
            collect_fns(&g.children, out);
        }
    }
}

/// All acquisition sites anywhere under `trees` (used for the per-fn
/// lock summary, so the statement walk is unnecessary here).
fn collect_acquisitions(trees: &[Tree], has_rwlock: bool, out: &mut Vec<(String, Pos)>) {
    for stmt in spine::statements(trees) {
        for e in stmt_exprs(&stmt) {
            expr_acquisitions(e, has_rwlock, out);
        }
    }
    for tree in trees {
        if let Tree::Group(g) = tree {
            collect_acquisitions(&g.children, has_rwlock, out);
        }
    }
}

/// The expressions a statement carries, for scanning.
fn stmt_exprs<'e>(stmt: &'e Stmt<'_>) -> Vec<&'e Expr> {
    match stmt {
        Stmt::Let { init: Some(e), .. } | Stmt::Field { value: e, .. } => vec![e],
        Stmt::Assign { target, value, .. } => vec![target, value],
        Stmt::Return { value: Some(e), .. } => vec![e],
        Stmt::Exprs(es) => es.iter().collect(),
        _ => Vec::new(),
    }
}

/// Is this method call a lock acquisition, and of which path?
fn acquisition_of(e: &Expr, has_rwlock: bool) -> Option<(String, Pos)> {
    if let Expr::Method {
        recv, method, args, pos,
    } = e
    {
        let is_acq = method == "lock" || (has_rwlock && (method == "read" || method == "write"));
        if is_acq && args.is_empty() {
            if let Expr::Path { text, .. } = recv.as_ref() {
                return Some((text.clone(), *pos));
            }
        }
    }
    None
}

/// Recursively collect acquisitions inside one expression.
fn expr_acquisitions(e: &Expr, has_rwlock: bool, out: &mut Vec<(String, Pos)>) {
    if let Some(acq) = acquisition_of(e, has_rwlock) {
        out.push(acq);
    }
    match e {
        Expr::Call { args, .. } => {
            for a in args {
                expr_acquisitions(a, has_rwlock, out);
            }
        }
        Expr::Method { recv, args, .. } => {
            expr_acquisitions(recv, has_rwlock, out);
            for a in args {
                expr_acquisitions(a, has_rwlock, out);
            }
        }
        Expr::Index { recv: inner, .. }
        | Expr::Paren { inner, .. }
        | Expr::Unary { inner, .. }
        | Expr::Cast { inner, .. } => expr_acquisitions(inner, has_rwlock, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_acquisitions(lhs, has_rwlock, out);
            expr_acquisitions(rhs, has_rwlock, out);
        }
        _ => {}
    }
}

/// Same-file callee names inside one expression (`f(…)` and `x.f(…)`).
fn expr_calls<'e>(e: &'e Expr, out: &mut Vec<(&'e str, Pos)>) {
    match e {
        Expr::Call { last, args, pos } => {
            out.push((last, *pos));
            for a in args {
                expr_calls(a, out);
            }
        }
        Expr::Method {
            recv, method, args, pos,
        } => {
            out.push((method, *pos));
            expr_calls(recv, out);
            for a in args {
                expr_calls(a, out);
            }
        }
        Expr::Index { recv: inner, .. }
        | Expr::Paren { inner, .. }
        | Expr::Unary { inner, .. }
        | Expr::Cast { inner, .. } => expr_calls(inner, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_calls(lhs, out);
            expr_calls(rhs, out);
        }
        _ => {}
    }
}

/// Process one expression under the current held-guard stack: flag C001
/// re-entry (direct or via same-file helper) and record C002 pairs.
fn scan_expr(
    e: &Expr,
    held: &[Held],
    fn_locks: &[(String, Vec<String>)],
    ctx: &mut Ctx<'_>,
) {
    let mut acqs = Vec::new();
    expr_acquisitions(e, ctx.has_rwlock, &mut acqs);
    for (lock, pos) in &acqs {
        if held.iter().any(|h| &h.lock == lock) {
            ctx.out.push(Finding {
                rule: "lock-reenter",
                code: "C001",
                path: ctx.path.to_string(),
                line: pos.line,
                col: pos.col,
                message: format!(
                    "`{lock}` locked while its guard is still held; parking_lot locks \
                     are not reentrant — drop the guard first"
                ),
                dims: None,
            });
        }
        for h in held {
            if &h.lock != lock {
                ctx.pairs.push((h.lock.clone(), lock.clone(), *pos));
            }
        }
    }
    let mut calls = Vec::new();
    expr_calls(e, &mut calls);
    for (callee, pos) in calls {
        let Some((_, locks)) = fn_locks.iter().find(|(n, _)| n == callee) else {
            continue;
        };
        for lock in locks {
            if held.iter().any(|h| &h.lock == lock) {
                ctx.out.push(Finding {
                    rule: "lock-reenter",
                    code: "C001",
                    path: ctx.path.to_string(),
                    line: pos.line,
                    col: pos.col,
                    message: format!(
                        "call to `{callee}` acquires `{lock}` while its guard is held \
                         here; parking_lot locks are not reentrant"
                    ),
                    dims: None,
                });
            }
        }
    }
}

/// Walk one block level in statement order, maintaining the held-guard
/// stack. Guards let-bound at this level die when the level ends.
fn walk_block(
    trees: &[Tree],
    held: &mut Vec<Held>,
    fn_locks: &[(String, Vec<String>)],
    ctx: &mut Ctx<'_>,
) {
    let entry = held.len();
    let mut fn_bodies: Vec<u32> = Vec::new();
    for stmt in spine::statements(trees) {
        match &stmt {
            // Nested fns get their own fresh walk from `check`.
            Stmt::FnSig {
                body: Some(body), ..
            } => {
                fn_bodies.push(body.open.lo);
                continue;
            }
            Stmt::Let {
                name: Some(name),
                init: Some(init),
                ..
            } => {
                scan_expr(init, held, fn_locks, ctx);
                // The binding holds whichever locks its initializer took.
                let mut acqs = Vec::new();
                expr_acquisitions(init, ctx.has_rwlock, &mut acqs);
                for (lock, _) in acqs {
                    held.push(Held {
                        lock,
                        guard: name.clone(),
                    });
                }
                continue;
            }
            _ => {}
        }
        for e in stmt_exprs(&stmt) {
            // `drop(guard)` releases before anything later in the block.
            if let Expr::Call { last, args, .. } = e {
                if last == "drop" && args.len() == 1 {
                    if let Expr::Path { text, .. } = &args[0] {
                        held.retain(|h| &h.guard != text);
                        continue;
                    }
                }
            }
            scan_expr(e, held, fn_locks, ctx);
        }
    }
    for tree in trees {
        if let Tree::Group(g) = tree {
            if g.delim == Delim::Brace && fn_bodies.contains(&g.open.lo) {
                continue;
            }
            walk_block(&g.children, held, fn_locks, ctx);
        }
    }
    held.truncate(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn codes(src: &str) -> Vec<&'static str> {
        check("vendor/rayon/src/lib.rs", src, &build(&lex(src).tokens))
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn c001_direct_reentry() {
        let src = "fn f(&self) { let g = self.inner.lock(); self.inner.lock().push(1); }";
        assert_eq!(codes(src), vec!["C001"]);
    }

    #[test]
    fn c001_respects_drop() {
        let src =
            "fn f(&self) { let g = self.inner.lock(); drop(g); self.inner.lock().push(1); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn c001_through_helper() {
        let src = "impl C { fn f(&self) { let g = self.inner.lock(); self.bump(); } \
                   fn bump(&self) { self.inner.lock().n += 1; } }";
        assert_eq!(codes(src), vec!["C001"]);
    }

    #[test]
    fn c001_different_locks_fine() {
        let src = "fn f(&self) { let g = self.a.lock(); self.b.lock().push(1); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn c002_both_orders() {
        let src = "fn f(&self) { \
                     { let a = self.a.lock(); let b = self.b.lock(); } \
                     { let b = self.b.lock(); let a = self.a.lock(); } \
                   }";
        assert_eq!(codes(src), vec!["C002"]);
    }

    #[test]
    fn c002_consistent_order_fine() {
        let src = "fn f(&self) { \
                     { let a = self.a.lock(); let b = self.b.lock(); } \
                     { let a = self.a.lock(); let b = self.b.lock(); } \
                   }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn temporaries_are_not_held() {
        // A temporary guard dies at the end of its statement.
        let src = "fn f(&self) { self.inner.lock().push(1); self.inner.lock().push(2); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn rwlock_read_counts_when_file_mentions_rwlock() {
        let src = "struct S { m: RwLock<u8> } \
                   fn f(&self) { let g = self.m.read(); let h = self.m.write(); }";
        assert_eq!(codes(src), vec!["C001"]);
    }
}
