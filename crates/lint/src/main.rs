//! `enprop-lint` — scan the workspace for determinism and numeric-hygiene
//! violations the compiler cannot see.
//!
//! ```text
//! enprop-lint [waivers] [--json] [--root DIR] [--list-rules] [--explain RULE]
//! ```
//!
//! The `waivers` subcommand lists every active waiver with its rule, site,
//! reason, and whether it still suppresses anything.
//!
//! Exit codes (aligned with the `enprop` CLI's typed codes): **0** clean,
//! **1** findings reported, **2** invalid usage or I/O error.

use enprop_lint::{report, scan};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: enprop-lint [waivers] [--json] [--root DIR] [--list-rules] [--explain RULE]";

struct Args {
    json: bool,
    root: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
    waivers: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        list_rules: false,
        explain: None,
        waivers: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "waivers" => args.waivers = true,
            "--json" => args.json = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule id")?;
                args.explain = Some(rule);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("enprop-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        print!("{}", report::list_rules());
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &args.explain {
        return match report::explain(rule) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("enprop-lint: unknown rule `{rule}`; try --list-rules");
                ExitCode::from(2)
            }
        };
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match scan::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("enprop-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    // Wall-clock here is CI telemetry for the lint-runtime budget, not sim
    // state; the `wall-clock` rule scopes to simulation crates only.
    let started = std::time::Instant::now();
    let rep = match scan::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("enprop-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let scan_ms = started.elapsed().as_millis();

    if args.waivers {
        print!("{}", report::render_waivers(&rep));
        return ExitCode::SUCCESS;
    }
    if args.json {
        print!("{}", report::render_json(&rep, scan_ms));
    } else {
        print!("{}", report::render_text(&rep));
    }
    if rep.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
