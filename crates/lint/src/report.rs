//! Rendering: human-readable text for terminals, and a stable JSON
//! document for CI (`--json`). JSON is hand-rolled like the obs
//! exporters — the build is offline, and the schema is four keys deep.

use crate::rules::{rule_by_id, Finding};
use crate::scan::Report;
use std::fmt::Write;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `path:line:col: [CODE/rule-id] message`, one finding per line, then a
/// one-line summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}/{}] {}",
            f.path, f.line, f.col, f.code, f.rule, f.message
        );
    }
    let _ = writeln!(
        out,
        "enprop-lint: {} finding(s), {} waived, {} file(s) scanned",
        report.findings.len(),
        report.waived,
        report.files_scanned
    );
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        escape(f.rule),
        escape(f.code),
        escape(&f.path),
        f.line,
        f.col,
        escape(&f.message)
    )
}

/// The machine format consumed by `scripts/verify.sh`. Schema marker
/// `enprop-lint-v1` mirrors the obs metrics export convention.
pub fn render_json(report: &Report) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    format!(
        "{{\"format\":\"enprop-lint-v1\",\"files_scanned\":{},\"waived\":{},\"findings\":[{}]}}\n",
        report.files_scanned,
        report.waived,
        findings.join(",")
    )
}

/// The `--explain <rule>` page: summary, scope, rationale, waiver recipe.
pub fn explain(id: &str) -> Option<String> {
    let r = rule_by_id(id)?;
    Some(format!(
        "{} ({})\n  {}\n\n  scope: {:?}\n\n  {}\n\n  waiver: append or precede the line with\n    \
         // enprop-lint: allow({}) -- <why this site is sound>\n",
        r.id, r.code, r.summary, r.scope, r.rationale, r.id
    ))
}

/// The `--list-rules` table.
pub fn list_rules() -> String {
    let mut out = String::new();
    for r in crate::rules::RULES {
        let _ = writeln!(out, "{:>5}  {:<16} {:?}: {}", r.code, r.id, r.scope, r.summary);
    }
    out
}
