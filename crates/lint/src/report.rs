//! Rendering: human-readable text for terminals, and a stable JSON
//! document for CI (`--json`). JSON is hand-rolled like the obs
//! exporters — the build is offline, and the schema is four keys deep.

use crate::rules::{rule_by_id, Finding};
use crate::scan::Report;
use std::fmt::Write;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `path:line:col: [CODE/rule-id] message`, one finding per line, then a
/// one-line summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}/{}] {}",
            f.path, f.line, f.col, f.code, f.rule, f.message
        );
    }
    let _ = writeln!(
        out,
        "enprop-lint: {} finding(s), {} waived, {} file(s) scanned",
        report.findings.len(),
        report.waived,
        report.files_scanned
    );
    out
}

fn finding_json(f: &Finding) -> String {
    let dims = match &f.dims {
        Some((lhs, rhs)) => format!(
            ",\"dims\":{{\"lhs\":\"{}\",\"rhs\":\"{}\"}}",
            escape(lhs),
            escape(rhs)
        ),
        None => String::new(),
    };
    format!(
        "{{\"rule\":\"{}\",\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"{}}}",
        escape(f.rule),
        escape(f.code),
        escape(&f.path),
        f.line,
        f.col,
        escape(&f.message),
        dims
    )
}

/// The machine format consumed by `scripts/verify.sh`. Schema marker
/// `enprop-lint-v2` (v1 plus per-finding `dims` annotations, the waiver
/// table, and scan timing) mirrors the obs metrics export convention.
pub fn render_json(report: &Report, scan_ms: u128) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let waivers: Vec<String> = report
        .waivers
        .iter()
        .map(|w| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"reason\":\"{}\",\"used\":{}}}",
                escape(&w.rule),
                escape(&w.path),
                w.line,
                escape(&w.reason),
                w.used
            )
        })
        .collect();
    format!(
        "{{\"format\":\"enprop-lint-v2\",\"files_scanned\":{},\"waived\":{},\"scan_ms\":{},\"findings\":[{}],\"waivers\":[{}]}}\n",
        report.files_scanned,
        report.waived,
        scan_ms,
        findings.join(","),
        waivers.join(",")
    )
}

/// The `waivers` subcommand: every active waiver with rule, site, reason
/// and whether it still suppresses anything.
pub fn render_waivers(report: &Report) -> String {
    let mut out = String::new();
    for w in &report.waivers {
        let status = if w.used { "active" } else { "STALE" };
        let _ = writeln!(
            out,
            "{}:{}: allow({}) [{}] -- {}",
            w.path, w.line, w.rule, status, w.reason
        );
    }
    let stale = report.waivers.iter().filter(|w| !w.used).count();
    let _ = writeln!(
        out,
        "enprop-lint: {} waiver(s), {} stale",
        report.waivers.len(),
        stale
    );
    out
}

/// The `--explain <rule>` page: summary, scope, rationale, waiver recipe.
pub fn explain(id: &str) -> Option<String> {
    let r = rule_by_id(id)?;
    Some(format!(
        "{} ({})\n  {}\n\n  scope: {:?}\n\n  {}\n\n  waiver: append or precede the line with\n    \
         // enprop-lint: allow({}) -- <why this site is sound>\n",
        r.id, r.code, r.summary, r.scope, r.rationale, r.id
    ))
}

/// The `--list-rules` table.
pub fn list_rules() -> String {
    let mut out = String::new();
    for r in crate::rules::RULES {
        let _ = writeln!(out, "{:>5}  {:<16} {:?}: {}", r.code, r.id, r.scope, r.summary);
    }
    out
}
