//! A minimal, dependency-free Rust lexer: just enough structure for the
//! lint rules to match identifier/punctuation sequences without being
//! fooled by comments, string literals, char literals, or lifetimes.
//!
//! Comments are not discarded — they are collected separately because the
//! waiver directives live in them (see `rules::parse_waivers`).
//! String and char literals become opaque single tokens, so a rule looking
//! for `Instant :: now` can never fire on `"Instant::now"` inside a test
//! fixture or a doc string.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `fn`, `static`).
    Ident,
    /// Integer literal, suffix included (`42`, `0xFF`, `1u64`).
    Int,
    /// Float literal, suffix included (`1.0`, `2e-3`, `1.5f32`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Any other single character (`.`, `:`, `(`, `=` …).
    Punct,
}

/// One source token with its 1-based position and byte-accurate span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token's first byte in the source.
    pub lo: u32,
    /// Byte offset one past the token's last byte.
    pub hi: u32,
}

impl Token {
    /// True when `next` starts exactly where `self` ends — used to join
    /// multi-character operators (`==`, `+=`, `::` …) that the lexer
    /// emits as adjacent single-character puncts.
    pub fn touches(&self, next: &Token) -> bool {
        self.hi == next.lo
    }
}

/// One comment (line or block), keyed to the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Token stream plus the comments that were stripped from it.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    byte: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        self.byte += c.len_utf8() as u32;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. The lexer is intentionally forgiving: malformed input
/// (unterminated strings, stray bytes) degrades to opaque tokens rather
/// than an error, because a linter must never crash on the code it scans.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        byte: 0,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let lo = cur.byte;
        let n_before = out.tokens.len();
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            line_comment(&mut cur, &mut out, line);
        } else if c == '/' && cur.peek(1) == Some('*') {
            block_comment(&mut cur, &mut out, line);
        } else if is_raw_string_start(&cur) {
            raw_string(&mut cur, &mut out, line, col);
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump(); // b
            char_literal(&mut cur, &mut out, line, col);
        } else if c == 'b' && cur.peek(1) == Some('"') {
            cur.bump(); // b
            string_literal(&mut cur, &mut out, line, col);
        } else if c == '"' {
            string_literal(&mut cur, &mut out, line, col);
        } else if c == '\'' {
            char_or_lifetime(&mut cur, &mut out, line, col);
        } else if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump(); // r
            cur.bump(); // #
            ident(&mut cur, &mut out, line, col);
        } else if c.is_ascii_digit() {
            number(&mut cur, &mut out, line, col);
        } else if is_ident_start(c) {
            ident(&mut cur, &mut out, line, col);
        } else {
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                col,
                lo: 0,
                hi: 0,
            });
        }
        // Every branch pushes at most one token; stamp its byte span from
        // the position captured before the branch consumed anything.
        if out.tokens.len() > n_before {
            if let Some(t) = out.tokens.last_mut() {
                t.lo = lo;
                t.hi = cur.byte;
            }
        }
    }
    out
}

fn is_raw_string_start(cur: &Cursor) -> bool {
    // r"…" | r#"…"# | br"…" | br#"…"#
    let (r_at, _) = match cur.peek(0) {
        Some('r') => (0, 1),
        Some('b') if cur.peek(1) == Some('r') => (1, 2),
        _ => return false,
    };
    let mut j = r_at + 1;
    while cur.peek(j) == Some('#') {
        j += 1;
    }
    cur.peek(j) == Some('"')
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment { text, line });
}

fn block_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment { text, line });
}

fn string_literal(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    });
}

fn raw_string(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    if cur.peek(0) == Some('b') {
        text.push('b');
        cur.bump();
    }
    text.push('r');
    cur.bump();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    text.push('"');
    cur.bump();
    'body: while let Some(c) = cur.peek(0) {
        if c == '"' {
            // Candidate terminator: `"` followed by `hashes` hashes.
            for k in 0..hashes {
                if cur.peek(1 + k) != Some('#') {
                    text.push(c);
                    cur.bump();
                    continue 'body;
                }
            }
            text.push('"');
            cur.bump();
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    });
}

fn char_literal(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    // Positioned on the opening `'`.
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\'')); // '
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '\'' {
            text.push(c);
            cur.bump();
            break;
        } else if c == '\n' {
            break; // unterminated; bail rather than swallow the file
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Char,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    });
}

fn char_or_lifetime(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    // `'a`/`'static` (lifetime) vs `'x'`/`'\n'` (char literal): a lifetime
    // is `'` + identifier NOT followed by a closing `'`.
    if cur.peek(1) == Some('\\') {
        char_literal(cur, out, line, col);
        return;
    }
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut j = 2;
        while cur.peek(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        if cur.peek(j) != Some('\'') {
            let mut text = String::new();
            text.push(cur.bump().unwrap_or('\'')); // '
            while cur.peek(0).is_some_and(is_ident_continue) {
                text.push(cur.bump().unwrap_or('_'));
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
                lo: 0,
                hi: 0,
            });
            return;
        }
    }
    char_literal(cur, out, line, col);
}

fn number(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    let mut is_float = false;

    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        // Radix literal: digits, underscores and (for hex) letters, plus
        // any trailing type suffix — never a float.
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while cur.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            text.push(cur.bump().unwrap_or('0'));
        }
    } else {
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(cur.bump().unwrap_or('0'));
        }
        // `1.5` and `1.` are floats; `1..2` is a range and `1.max(2)` a
        // method call, so only consume `.` when what follows cannot start
        // a new token that owns it.
        if cur.peek(0) == Some('.') {
            let next = cur.peek(1);
            let part_of_float =
                next.is_none_or(|n| n.is_ascii_digit() || !(is_ident_start(n) || n == '.'));
            if part_of_float {
                is_float = true;
                text.push(cur.bump().unwrap_or('.'));
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(cur.bump().unwrap_or('0'));
                }
            }
        }
        if matches!(cur.peek(0), Some('e' | 'E'))
            && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek(1), Some('+' | '-'))
                    && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            if matches!(cur.peek(0), Some('+' | '-')) {
                text.push(cur.bump().unwrap_or('+'));
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().unwrap_or('0'));
            }
        }
        // Type suffix (`u64`, `f32`, …). An `f` suffix makes it a float.
        if cur.peek(0).is_some_and(is_ident_start) {
            if cur.peek(0) == Some('f') {
                is_float = true;
            }
            while cur.peek(0).is_some_and(is_ident_continue) {
                text.push(cur.bump().unwrap_or('_'));
            }
        }
    }

    out.tokens.push(Token {
        kind: if is_float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    });
}

fn ident(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        text.push(cur.bump().unwrap_or('_'));
    }
    out.tokens.push(Token {
        kind: TokKind::Ident,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_stripped_but_kept() {
        let l = lex("let x = 1; // trailing\n/* block\nspans */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.tokens.iter().all(|t| t.text != "trailing"));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = "Instant::now()";"#);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(!toks.iter().any(|(_, t)| t == "Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let t = 1;"###);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("quote")));
        assert!(toks.iter().any(|(_, t)| t == "t"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_classify() {
        let toks = kinds("1 1.5 1e3 2.0f64 7u32 0xFF 1.max(2) 0..4");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, ["1.5", "1e3", "2.0f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "0xFF"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
