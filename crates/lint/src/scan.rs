//! Workspace walker: finds the `.rs` files the lint pass owns, runs the
//! rules over each, and aggregates a deterministic report.
//!
//! Scope must agree with `cargo clippy --workspace`: first-party sources
//! only. `vendor/` (offline dependency stubs), `target/` (build output),
//! and dot-directories are excluded explicitly — vendored code is not ours
//! to lint, and scanning build artifacts would double-report generated
//! copies of real sources. One carve-out: `vendor/rayon` *is* walked,
//! because the lock-discipline rules (C001/C002) own its locking behavior;
//! `rules::scope_applies` guarantees vendored files see only those rules.

use crate::rules::{lint_source, Finding, WaiverRecord};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, anywhere in the tree.
pub const EXCLUDED_DIRS: &[&str] = &["vendor", "target"];

/// Subdirectories of excluded directories that are walked anyway (the
/// lock-rule surface inside `vendor/`).
pub const INCLUDED_VENDOR: &[&str] = &["rayon"];

/// Aggregate result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// All unwaived findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by valid waivers.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every well-formed waiver in the workspace, sorted by (path, line);
    /// `used == false` entries correspond to W002 findings.
    pub waivers: Vec<WaiverRecord>,
}

/// Recursively collect the workspace's `.rs` files under `root`, skipping
/// [`EXCLUDED_DIRS`] and dot-directories. Entries are sorted so the scan
/// order — and therefore the report — is deterministic across platforms.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if EXCLUDED_DIRS.contains(&name) || name.starts_with('.') {
                    // The lock-rule surface inside vendor/ is still walked.
                    if name == "vendor" {
                        for sub in INCLUDED_VENDOR {
                            let sub = path.join(sub);
                            if sub.is_dir() {
                                stack.push(sub);
                            }
                        }
                    }
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan the workspace rooted at `root` and return the aggregated report.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rs_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file = lint_source(&rel, &src);
        report.findings.extend(file.findings);
        report.waived += file.waived;
        report.waivers.extend(file.waivers);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
