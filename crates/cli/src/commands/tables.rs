//! Regeneration of the paper's Tables 4, 6, 7 and 8.

use super::{ObsCtx, Opts};
use crate::diag;
use crate::output::{fmt_sig, render_csv, render_table};
use enprop_clustersim::ClusterSpec;
use enprop_core::{best_ppr_config, single_node_row, table4_obs, ClusterModel};
use enprop_workloads::catalog;

fn emit(opts: &Opts, rows: Vec<Vec<String>>) {
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
    }
}

/// Table 4: cluster validation — model vs simulated testbed errors.
/// The validation jobs land on the telemetry trace when recording is on.
pub fn table4_cmd(opts: &Opts, ctx: &mut ObsCtx) {
    println!("Table 4: Cluster validation (model vs simulated measurement)\n");
    let mut rows = vec![vec![
        "Domain".into(),
        "Program".into(),
        "Time err [%]".into(),
        "Paper [%]".into(),
        "Energy err [%]".into(),
        "Paper [%]".into(),
    ]];
    for row in table4_obs(opts.samples, opts.seed, &mut ctx.rec) {
        rows.push(vec![
            row.domain.into(),
            row.program.into(),
            format!("{:.1}", row.report.time_error_pct),
            format!("{:.0}", row.paper_errors.0),
            format!("{:.1}", row.report.energy_error_pct),
            format!("{:.0}", row.paper_errors.1),
        ]);
    }
    emit(opts, rows);
}

/// Table 6: performance-to-power ratio at each node's most
/// energy-efficient configuration.
pub fn table6_cmd(opts: &Opts) {
    println!("Table 6: Performance-to-power ratio (most efficient config per node)\n");
    let mut rows = vec![vec![
        "Program".into(),
        "PPR unit".into(),
        "A9 node".into(),
        "K10 node".into(),
        "A9 config".into(),
        "K10 config".into(),
    ]];
    for w in catalog::all() {
        let a9 = best_ppr_config(&w, "A9");
        let k10 = best_ppr_config(&w, "K10");
        rows.push(vec![
            w.name.into(),
            format!("({}/s)/W", w.unit),
            fmt_sig(a9.ppr),
            fmt_sig(k10.ppr),
            format!("{}c @ {:.1} GHz", a9.cores, a9.freq / 1e9),
            format!("{}c @ {:.1} GHz", k10.cores, k10.freq / 1e9),
        ]);
    }
    emit(opts, rows);
}

/// Table 7: single-node energy proportionality metrics.
pub fn table7_cmd(opts: &Opts) {
    println!("Table 7: Single-node energy proportionality\n");
    let mut rows = vec![vec![
        "Program".into(),
        "DPR A9".into(),
        "DPR K10".into(),
        "IPR A9".into(),
        "IPR K10".into(),
        "EPM A9".into(),
        "EPM K10".into(),
        "LDR A9".into(),
        "LDR K10".into(),
    ]];
    for w in catalog::all() {
        let a9 = single_node_row(&w, "A9").metrics;
        let k10 = single_node_row(&w, "K10").metrics;
        rows.push(vec![
            w.name.into(),
            format!("{:.2}", a9.dpr),
            format!("{:.2}", k10.dpr),
            format!("{:.2}", a9.ipr),
            format!("{:.2}", k10.ipr),
            format!("{:.2}", a9.epm),
            format!("{:.2}", k10.epm),
            format!("{:.2}", a9.ldr),
            format!("{:.2}", k10.ldr),
        ]);
    }
    emit(opts, rows);
    if !opts.csv {
        diag::note(
            "\nNote (§III-B): all four metrics collapse to functions of IPR for the\n\
             linear model curves; absolute idle powers differ 25x (A9 1.8 W, K10 45 W).",
        );
    }
}

/// Table 8: cluster-wide energy proportionality for the budget mixes.
pub fn table8_cmd(opts: &Opts) {
    println!("Table 8: Cluster-wide energy proportionality (1 kW budget)\n");
    let mixes = [(128u32, 0u32), (64, 8), (0, 16)];
    let mut header = vec!["Program".to_string()];
    for metric in ["DPR", "IPR", "EPM", "LDR"] {
        for (a9, k10) in mixes {
            header.push(format!("{metric} {a9}A9:{k10}K10"));
        }
    }
    let mut rows = vec![header];
    for w in catalog::all() {
        let metrics: Vec<_> = mixes
            .iter()
            .map(|&(a9, k10)| {
                ClusterModel::new(w.clone(), ClusterSpec::a9_k10(a9, k10)).metrics()
            })
            .collect();
        let mut row = vec![w.name.to_string()];
        row.extend(metrics.iter().map(|m| format!("{:.2}", m.dpr)));
        row.extend(metrics.iter().map(|m| format!("{:.2}", m.ipr)));
        row.extend(metrics.iter().map(|m| format!("{:.2}", m.epm)));
        row.extend(metrics.iter().map(|m| format!("{:.2}", m.ldr)));
        rows.push(row);
    }
    emit(opts, rows);
    if !opts.csv {
        let k10_idle = ClusterSpec::a9_k10(0, 16).idle_w();
        let a9_idle = ClusterSpec::a9_k10(128, 0).idle_w();
        diag::note(format!(
            "\nNote (§III-C): the most 'proportional' cluster (16 K10) idles at {k10_idle:.0} W,\n\
             ~{:.1}x the 128-A9 cluster ({a9_idle:.0} W) — proportionality is not efficiency.",
            k10_idle / a9_idle
        ));
    }
}

/// Table 5: the heterogeneous node types (spec sheet).
pub fn table5_cmd(opts: &Opts) {
    use enprop_nodesim::NodeSpec;
    println!("Table 5: Types of heterogeneous nodes\n");
    let mut rows = vec![vec![
        "Node".into(),
        "ISA".into(),
        "Clock".into(),
        "Cores".into(),
        "L1d/core".into(),
        "L2".into(),
        "L3".into(),
        "Memory".into(),
        "I/O".into(),
        "P_idle".into(),
    ]];
    let fmt_bytes = |b: u64| -> String {
        if b == 0 {
            "NA".into()
        } else if b >= 1 << 30 {
            format!("{}GB", b >> 30)
        } else if b >= 1 << 20 {
            format!("{}MB", b >> 20)
        } else {
            format!("{}KB", b >> 10)
        }
    };
    for spec in [
        NodeSpec::cortex_a9(),
        NodeSpec::opteron_k10(),
        NodeSpec::cortex_a15(),
        NodeSpec::xeon_e5(),
    ] {
        rows.push(vec![
            spec.name.into(),
            spec.isa.into(),
            format!("{:.1}-{:.1} GHz", spec.fmin() / 1e9, spec.fmax() / 1e9),
            spec.cores.to_string(),
            fmt_bytes(spec.l1d_per_core),
            fmt_bytes(spec.l2_total),
            fmt_bytes(spec.l3_total),
            fmt_bytes(spec.memory),
            format!("{:.0} Mbps", spec.net_bandwidth * 8.0 / 1e6),
            format!("{:.1} W", spec.power.sys_idle_w),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
        diag::note("\n(A15 and XeonE5 are extension node types; see DESIGN.md)");
    }
}
