//! Host characterization command: run the real kernels on this machine
//! (the living analogue of the paper's `perf` + power-meter step).

use super::Opts;
use crate::output::{fmt_sig, render_csv, render_table};
use enprop_nodesim::{characterize, Frictions, NodeSpec};
use enprop_workloads::characterize::{measure, Kernel};

/// Run every executable kernel briefly and report host throughput.
pub fn kernels_cmd(opts: &Opts, scale: f64) {
    println!("Host kernel characterization (scale {scale}):\n");
    let kernels = [
        (Kernel::Ep, "EP", "random numbers"),
        (Kernel::Memcached, "memcached", "bytes"),
        (Kernel::X264, "x264", "frames"),
        (Kernel::Blackscholes, "blackscholes", "options"),
        (Kernel::Julius, "Julius", "samples"),
        (Kernel::Rsa2048, "RSA-2048", "verifies"),
    ];
    let mut rows = vec![vec![
        "Program".into(),
        "ops".into(),
        "seconds".into(),
        "throughput [unit/s]".into(),
        "unit".into(),
    ]];
    for (k, name, unit) in kernels {
        let m = measure(k, scale);
        rows.push(vec![
            name.into(),
            m.ops.to_string(),
            format!("{:.3}", m.seconds),
            fmt_sig(m.ops_per_sec),
            unit.into(),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
    }
}

/// Run the §II-B micro-benchmark power characterization against the
/// simulated nodes and print the recovered parameters vs ground truth.
pub fn power_cmd(opts: &Opts) {
    println!("Micro-benchmark power characterization (simulated testbed):\n");
    let mut rows = vec![vec![
        "Node".into(),
        "P_idle [W]".into(),
        "P_CPU,act/core [W]".into(),
        "P_CPU,stall/core [W]".into(),
        "P_mem [W]".into(),
        "P_net [W]".into(),
    ]];
    for spec in [NodeSpec::cortex_a9(), NodeSpec::opteron_k10()] {
        let m = characterize(&spec, &Frictions::default(), opts.seed);
        rows.push(vec![
            spec.name.into(),
            format!("{:.2}", m.idle_w),
            format!("{:.3}", m.core_act_w),
            format!("{:.3}", m.core_stall_w),
            format!("{:.2}", m.mem_w),
            format!("{:.2}", m.net_w),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
    }
}
