//! `enprop serve` / `enprop replay` / `enprop chaos` — the online serving
//! mode: a fault-tolerant virtual-time cluster controller fed by a
//! synthetic load generator, a recorded JSONL arrival trace, or a chaos
//! sweep of randomized fault plans.

use super::{ObsCtx, Opts};
use crate::output::render_csv;
use enprop_clustersim::{ClusterSpec, EnpropError, FaultKind, FaultPlan, GroupFaultProfile, MtbfModel};
use enprop_faults::{DomainFaultKind, DomainFaultProfile, Topology, TopologyFaultPlan};
use enprop_serve::{
    chaos_sweep, cluster_capacity_ops_s, default_ops_per_request, domain_chaos_sweep, format_trace,
    parse_trace, Arrival, ArrivalModel, ArrivalSource, Controller, ReplayCursor, RunHooks,
    RunOutcome, ServeConfig, ServeReport, SyntheticArrivals, WindowReport,
};
use enprop_workloads::catalog;
use std::path::{Path, PathBuf};

/// How long a `--emergency-mtbf` power emergency holds its cap. A fixed
/// length keeps the flag surface to the two knobs that matter (how often,
/// how hard); sweeps that need varied lengths use the chaos harness.
const EMERGENCY_DURATION_S: f64 = 10.0;

/// Knobs of the serving commands (parsed from the command line in `main`).
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Requests to generate (`serve`) or sample per chaos plan.
    pub requests: u64,
    /// Offered load as a fraction of fault-free cluster capacity (used
    /// when `--rate` is absent).
    pub utilization: f64,
    /// Explicit mean arrival rate, requests/second (overrides
    /// `--utilization`).
    pub rate: Option<f64>,
    /// Arrival process: `"poisson"` or `"diurnal"`.
    pub arrival: String,
    /// Diurnal cycle length, seconds.
    pub period_s: f64,
    /// Request size override, operations.
    pub ops_per_request: Option<f64>,
    /// p95 response-time objective, seconds.
    pub slo_p95_s: f64,
    /// Cluster power cap, watts (absent = uncapped).
    pub power_cap_w: Option<f64>,
    /// Per-node MTBF, seconds (absent = no fault injection).
    pub mtbf_s: Option<f64>,
    /// Stall length, seconds (adds a stall fault kind).
    pub stall_s: Option<f64>,
    /// Straggler slowdown factor (adds a straggler fault kind).
    pub slowdown: Option<f64>,
    /// Repair time for detected-down nodes, seconds.
    pub repair_s: f64,
    /// Admission-control bound on in-flight requests.
    pub max_inflight: usize,
    /// Write the generated arrival stream to this JSONL file (replayable
    /// with `enprop replay --trace FILE`).
    pub emit_arrivals: Option<PathBuf>,
    /// Chaos sweep width (plans swept by `enprop chaos`).
    pub plans: u32,
    /// Optional p999 response-time objective, seconds (an additional SLO
    /// constraint in the control loop).
    pub slo_p999_s: Option<f64>,
    /// Print one observability-plane window row per this many virtual
    /// seconds as the run progresses (sets the plane's window length).
    pub live_report_s: Option<f64>,
    /// Write a crash-consistent snapshot here at every closed obs window
    /// (tmp-then-rename, so a kill mid-write never corrupts it).
    pub checkpoint_out: Option<PathBuf>,
    /// Resume a killed run from this snapshot instead of starting fresh.
    pub resume_from: Option<PathBuf>,
    /// Abandon the run (as a crash would) after this many events — pairs
    /// with `--checkpoint-out` to exercise resume end to end.
    pub kill_after_events: Option<u64>,
    /// Fraction of synthetic arrivals tagged best-effort (shed first by
    /// the degradation ladder).
    pub best_effort: Option<f64>,
    /// Rack MTBF, seconds: correlated rack crashes (absent = none).
    pub rack_mtbf_s: Option<f64>,
    /// PDU MTBF, seconds: correlated power losses (absent = none).
    pub pdu_mtbf_s: Option<f64>,
    /// Cluster-wide power-emergency MTBF, seconds (requires
    /// `--emergency-cap`).
    pub emergency_mtbf_s: Option<f64>,
    /// Power-emergency cap, watts (requires `--emergency-mtbf`).
    pub emergency_cap_w: Option<f64>,
    /// Physical placement: nodes per rack.
    pub nodes_per_rack: usize,
    /// Physical placement: racks per PDU.
    pub racks_per_pdu: usize,
    /// `enprop chaos --domains`: sweep correlated-failure plans
    /// (rack/PDU/emergency blasts) instead of independent per-node plans.
    pub domains: bool,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            requests: 10_000,
            utilization: 0.6,
            rate: None,
            arrival: "poisson".into(),
            period_s: 60.0,
            ops_per_request: None,
            slo_p95_s: 0.25,
            power_cap_w: None,
            mtbf_s: None,
            stall_s: None,
            slowdown: None,
            repair_s: 30.0,
            max_inflight: 10_000,
            emit_arrivals: None,
            plans: 8,
            slo_p999_s: None,
            live_report_s: None,
            checkpoint_out: None,
            resume_from: None,
            kill_after_events: None,
            best_effort: None,
            rack_mtbf_s: None,
            pdu_mtbf_s: None,
            emergency_mtbf_s: None,
            emergency_cap_w: None,
            nodes_per_rack: 4,
            racks_per_pdu: 2,
            domains: false,
        }
    }
}

/// The serving workload default: the paper's latency-sensitive service.
fn serving_workload(opts: &Opts) -> Result<enprop_workloads::Workload, EnpropError> {
    let name = opts.workload.clone().unwrap_or_else(|| "memcached".into());
    catalog::try_by_name(&name)
}

/// Build the controller config shared by `serve` and `replay`.
fn serve_config(opts: &Opts, so: &ServeOpts) -> ServeConfig {
    let mut cfg = ServeConfig::new(opts.seed);
    cfg.slo_p95_s = so.slo_p95_s;
    cfg.power_cap_w = so.power_cap_w.unwrap_or(f64::INFINITY);
    cfg.repair_s = so.repair_s;
    cfg.max_inflight = so.max_inflight;
    cfg.slo_p999_s = so.slo_p999_s;
    if let Some(w) = so.live_report_s {
        cfg.obs_window_s = w;
    }
    cfg
}

/// The `--live-report` sink: a header once, then one fixed-width row per
/// closed plane window, streamed as virtual time advances.
fn live_sink(enabled: bool) -> impl FnMut(&WindowReport) {
    let mut printed_header = false;
    move |w: &WindowReport| {
        if !enabled {
            return;
        }
        if !printed_header {
            println!("{}", WindowReport::header());
            printed_header = true;
        }
        println!("{}", w.row());
    }
}

/// Build the fault plan from the `--mtbf`/`--stall`/`--slowdown` flags
/// (inert when `--mtbf` is absent, matching `enprop faults` semantics).
fn serve_plan(opts: &Opts, so: &ServeOpts, groups: usize) -> FaultPlan {
    let Some(mtbf_s) = so.mtbf_s else {
        return FaultPlan::none();
    };
    let mut kinds = vec![(1.0, FaultKind::Crash)];
    if let Some(duration_s) = so.stall_s {
        kinds.push((1.0, FaultKind::Stall { duration_s }));
    }
    if let Some(slowdown) = so.slowdown {
        kinds.push((1.0, FaultKind::Straggler { slowdown }));
    }
    FaultPlan::uniform(
        opts.seed,
        GroupFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds,
        },
        groups,
    )
}

/// Build the correlated-failure plan from the topology flags. `None`
/// when no topology flag was given; the emergency flags must come as a
/// pair (a rate without a cap — or a cap without a rate — is a typed
/// parameter error, not a guess).
fn serve_topology(
    opts: &Opts,
    so: &ServeOpts,
    n_nodes: usize,
) -> Result<Option<TopologyFaultPlan>, EnpropError> {
    let any = so.rack_mtbf_s.is_some()
        || so.pdu_mtbf_s.is_some()
        || so.emergency_mtbf_s.is_some()
        || so.emergency_cap_w.is_some();
    if !any {
        return Ok(None);
    }
    match (so.emergency_mtbf_s, so.emergency_cap_w) {
        (Some(_), None) => {
            return Err(EnpropError::invalid_parameter(
                "--emergency-cap",
                "--emergency-mtbf needs --emergency-cap W (how hard to cap)",
            ));
        }
        (None, Some(_)) => {
            return Err(EnpropError::invalid_parameter(
                "--emergency-mtbf",
                "--emergency-cap needs --emergency-mtbf S (how often emergencies strike)",
            ));
        }
        _ => {}
    }
    let mut plan = TopologyFaultPlan::none(Topology::new(
        n_nodes,
        so.nodes_per_rack,
        so.racks_per_pdu,
    )?);
    plan.seed = opts.seed;
    if let Some(mtbf_s) = so.rack_mtbf_s {
        plan.rack = DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds: vec![(1.0, DomainFaultKind::RackCrash)],
        };
    }
    if let Some(mtbf_s) = so.pdu_mtbf_s {
        plan.pdu = DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds: vec![(1.0, DomainFaultKind::PduLoss)],
        };
    }
    if let (Some(mtbf_s), Some(cap_w)) = (so.emergency_mtbf_s, so.emergency_cap_w) {
        plan.cluster = DomainFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds: vec![(
                1.0,
                DomainFaultKind::PowerEmergency { cap_w, duration_s: EMERGENCY_DURATION_S },
            )],
        };
    }
    plan.validate()?;
    Ok(Some(plan))
}

/// Write one checkpoint crash-consistently: to `<path>.tmp`, then rename
/// over `path`. A kill mid-write leaves the previous snapshot intact; the
/// snapshot's own trailer line guards against torn renames on exotic
/// filesystems.
fn write_checkpoint(path: &Path, snapshot: &str) -> Result<(), EnpropError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, snapshot).map_err(|e| {
        EnpropError::invalid_config(format!("cannot write {}: {e}", tmp.display()))
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        EnpropError::invalid_config(format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Shared tail of `serve` and `replay`: wire the hooks (live report,
/// checkpoint sink, kill switch), run or resume the controller, and print
/// the report — or the crash notice when `--kill-after-events` fired.
#[allow(clippy::too_many_arguments)]
fn run_serving(
    opts: &Opts,
    so: &ServeOpts,
    workload: &enprop_workloads::Workload,
    cluster: &ClusterSpec,
    plan: &FaultPlan,
    topo: Option<&TopologyFaultPlan>,
    cfg: &ServeConfig,
    source: &mut ArrivalSource,
    mode: &str,
    ctx: &mut ObsCtx,
) -> Result<(), EnpropError> {
    let mut live = live_sink(so.live_report_s.is_some());
    // The checkpoint sink cannot return an error through the hook, so it
    // parks the first failure here and the run surfaces it on exit.
    let mut cp_err: Option<EnpropError> = None;
    let cp_path = so.checkpoint_out.clone();
    let mut cp_sink = |snap: &str| {
        if let Some(path) = &cp_path {
            if cp_err.is_none() {
                cp_err = write_checkpoint(path, snap).err();
            }
        }
    };
    let mut hooks = RunHooks {
        live: &mut live,
        checkpoint: so.checkpoint_out.is_some().then_some(&mut cp_sink as &mut dyn FnMut(&str)),
        kill_after_events: so.kill_after_events,
    };
    let outcome = if let Some(snap_path) = &so.resume_from {
        let snapshot = std::fs::read_to_string(snap_path).map_err(|e| {
            EnpropError::invalid_config(format!("cannot read {}: {e}", snap_path.display()))
        })?;
        Controller::resume_full(
            workload, cluster, plan, topo, cfg, source, &mut ctx.rec, &snapshot, &mut hooks,
        )?
    } else {
        Controller::run_full(
            workload, cluster, plan, topo, cfg, source, &mut ctx.rec, &mut hooks,
        )?
    };
    if let Some(e) = cp_err {
        return Err(e);
    }
    match outcome {
        RunOutcome::Completed(report) => {
            print_report(opts, workload.name, cluster, mode, &report);
        }
        RunOutcome::Killed { events, at_s } => {
            println!(
                "run killed after {events} events at t = {at_s:.3} virtual s (simulated crash; \
                 no report)"
            );
            if let Some(path) = &so.checkpoint_out {
                println!(
                    "resume with: enprop {mode} --resume-from {} <same flags>",
                    path.display()
                );
            }
        }
    }
    Ok(())
}

/// `enprop serve`: generate a synthetic arrival stream and run the online
/// controller over it, optionally writing the stream out for replay.
pub fn serve_cmd(
    opts: &Opts,
    so: &ServeOpts,
    a9: u32,
    k10: u32,
    ctx: &mut ObsCtx,
) -> Result<(), EnpropError> {
    let workload = serving_workload(opts)?;
    let cluster = ClusterSpec::a9_k10(a9, k10);
    let ops = match so.ops_per_request {
        Some(o) => o,
        None => default_ops_per_request(&workload, &cluster)?,
    };
    let rate = match so.rate {
        Some(r) => r,
        None => so.utilization * cluster_capacity_ops_s(&workload, &cluster)? / ops,
    };
    let model = match so.arrival.as_str() {
        "poisson" => ArrivalModel::Poisson { rate },
        "diurnal" => ArrivalModel::Diurnal {
            // The requested rate is the cycle mean; the sinusoid swings
            // symmetrically to half / one-and-a-half of it.
            base_rate: rate * 0.5,
            peak_rate: rate * 1.5,
            period_s: so.period_s,
        },
        other => {
            return Err(EnpropError::invalid_parameter(
                "--arrival",
                format!("expected poisson or diurnal, got {other}"),
            ));
        }
    };
    // Materialize the stream so `--emit-arrivals` and the run see the
    // exact same timeline.
    let mut generator = SyntheticArrivals::new(model, so.requests, ops, 0.2, opts.seed)?;
    if let Some(frac) = so.best_effort {
        generator = generator.with_best_effort(frac)?;
    }
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(so.requests as usize);
    while let Some(a) = generator.next_arrival() {
        arrivals.push(a);
    }
    if let Some(path) = &so.emit_arrivals {
        std::fs::write(path, format_trace(&arrivals)).map_err(|e| {
            EnpropError::invalid_config(format!("cannot write {}: {e}", path.display()))
        })?;
        crate::diag::info(format!(
            "wrote {} arrivals to {}",
            arrivals.len(),
            path.display()
        ));
    }

    let plan = serve_plan(opts, so, cluster.groups.len());
    let topo = serve_topology(opts, so, cluster.node_count() as usize)?;
    let cfg = serve_config(opts, so);
    let mut source = ArrivalSource::Replay(ReplayCursor::new(arrivals));
    run_serving(
        opts, so, &workload, &cluster, &plan, topo.as_ref(), &cfg, &mut source, "serve", ctx,
    )
}

/// `enprop replay`: run the controller over a recorded JSONL arrival
/// trace.
pub fn replay_cmd(
    opts: &Opts,
    so: &ServeOpts,
    trace_path: &PathBuf,
    a9: u32,
    k10: u32,
    ctx: &mut ObsCtx,
) -> Result<(), EnpropError> {
    let workload = serving_workload(opts)?;
    let cluster = ClusterSpec::a9_k10(a9, k10);
    let default_ops = match so.ops_per_request {
        Some(o) => o,
        None => default_ops_per_request(&workload, &cluster)?,
    };
    let text = std::fs::read_to_string(trace_path).map_err(|e| {
        EnpropError::invalid_config(format!("cannot read {}: {e}", trace_path.display()))
    })?;
    let arrivals = parse_trace(&text, default_ops)?;
    crate::diag::info(format!(
        "replaying {} arrivals from {}",
        arrivals.len(),
        trace_path.display()
    ));

    let plan = serve_plan(opts, so, cluster.groups.len());
    let topo = serve_topology(opts, so, cluster.node_count() as usize)?;
    let cfg = serve_config(opts, so);
    let mut source = ArrivalSource::Replay(ReplayCursor::new(arrivals));
    run_serving(
        opts, so, &workload, &cluster, &plan, topo.as_ref(), &cfg, &mut source, "replay", ctx,
    )
}

/// `enprop chaos`: sweep randomized fault plans and verify the robustness
/// invariants (conservation, span balance, termination) hold in each.
pub fn chaos_cmd(opts: &Opts, so: &ServeOpts, a9: u32, k10: u32) -> Result<(), EnpropError> {
    let workload = serving_workload(opts)?;
    let cluster = ClusterSpec::a9_k10(a9, k10);
    let cfg = serve_config(opts, so);
    let out = if so.domains {
        domain_chaos_sweep(&workload, &cluster, &cfg, so.plans, so.requests, so.utilization)?
    } else {
        chaos_sweep(&workload, &cluster, &cfg, so.plans, so.requests, so.utilization)?
    };

    if !opts.csv {
        println!(
            "Chaos sweep{}: {} on {} ({} nodes), {} plans x {} requests @ {:.0}% load\n",
            if so.domains { " (correlated failure domains)" } else { "" },
            workload.name,
            cluster.label(),
            cluster.node_count(),
            so.plans,
            so.requests,
            so.utilization * 100.0
        );
    }
    let mut rows = vec![vec![
        "plan".to_string(),
        "faults".to_string(),
        "domain_faults".to_string(),
        "breakers".to_string(),
        "repairs".to_string(),
        "completions".to_string(),
        "shed".to_string(),
        "p95_s".to_string(),
        "conservation".to_string(),
        "spans".to_string(),
    ]];
    for p in &out.plans {
        let r = &p.report;
        rows.push(vec![
            p.plan.to_string(),
            (r.crashes + r.stalls + r.stragglers).to_string(),
            (r.rack_crashes + r.pdu_losses + r.partitions + r.power_emergencies).to_string(),
            r.breaker_opens.to_string(),
            r.repairs.to_string(),
            r.completions.to_string(),
            r.shed().to_string(),
            format!("{:.4}", r.p95_s),
            if p.conservation_ok { "ok" } else { "VIOLATED" }.to_string(),
            if p.spans_balanced { "balanced" } else { "LEAKED" }.to_string(),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", crate::output::render_table(&rows));
        println!();
    }
    for (plan, err) in &out.run_errors {
        crate::diag::error(format!("plan {plan} failed to run: {err}"));
    }
    println!("{}", out.summary_line());
    if !out.all_ok() {
        return Err(EnpropError::ClusterDead {
            detail: "chaos sweep violated a serving invariant (see report above)".into(),
        });
    }
    Ok(())
}

/// Print the serving report: accounting, latency/energy aggregates, and
/// every reconfiguration decision class — ending with the conservation
/// line the smoke gates grep.
fn print_report(opts: &Opts, workload: &str, cluster: &ClusterSpec, mode: &str, r: &ServeReport) {
    if opts.csv {
        let rows = vec![
            vec!["metric".to_string(), "value".to_string()],
            vec!["arrivals".into(), r.arrivals.to_string()],
            vec!["completions".into(), r.completions.to_string()],
            vec!["shed_admission".into(), r.shed_admission.to_string()],
            vec!["shed_backpressure".into(), r.shed_backpressure.to_string()],
            vec!["shed_retry".into(), r.shed_retry.to_string()],
            vec!["in_flight_at_stop".into(), r.in_flight_at_stop.to_string()],
            vec!["timeouts".into(), r.timeouts.to_string()],
            vec!["retries".into(), r.retries.to_string()],
            vec!["reroutes".into(), r.reroutes.to_string()],
            vec!["crashes".into(), r.crashes.to_string()],
            vec!["stalls".into(), r.stalls.to_string()],
            vec!["stragglers".into(), r.stragglers.to_string()],
            vec!["repairs".into(), r.repairs.to_string()],
            vec!["activations".into(), r.activations.to_string()],
            vec!["deactivations".into(), r.deactivations.to_string()],
            vec!["dvfs_up".into(), r.dvfs_up.to_string()],
            vec!["dvfs_down".into(), r.dvfs_down.to_string()],
            vec!["rack_crashes".into(), r.rack_crashes.to_string()],
            vec!["pdu_losses".into(), r.pdu_losses.to_string()],
            vec!["partitions".into(), r.partitions.to_string()],
            vec!["power_emergencies".into(), r.power_emergencies.to_string()],
            vec!["emergency_actions".into(), r.emergency_actions.to_string()],
            vec!["breaker_opens".into(), r.breaker_opens.to_string()],
            vec!["breaker_closes".into(), r.breaker_closes.to_string()],
            vec!["horizon_s".into(), format!("{:.6}", r.horizon_s)],
            vec!["energy_j".into(), format!("{:.3}", r.energy_j)],
            vec!["mean_power_w".into(), format!("{:.3}", r.mean_power_w)],
            vec!["mean_response_s".into(), format!("{:.6}", r.mean_response_s)],
            vec!["p50_s".into(), format!("{:.6}", r.p50_s)],
            vec!["p95_s".into(), format!("{:.6}", r.p95_s)],
            vec!["p99_s".into(), format!("{:.6}", r.p99_s)],
            vec!["p999_s".into(), format!("{:.6}", r.p999_s)],
            vec!["events".into(), r.events.to_string()],
            vec!["forced_stop".into(), r.forced_stop.to_string()],
        ];
        print!("{}", render_csv(&rows));
    } else {
        println!(
            "Online {mode}: {workload} on {} ({} nodes)\n",
            cluster.label(),
            cluster.node_count()
        );
        println!(
            "  served {} of {} requests over {:.1} virtual s ({} events)",
            r.completions, r.arrivals, r.horizon_s, r.events
        );
        println!(
            "  latency: mean {:.4} s   p50 {:.4} s   p95 {:.4} s   p99 {:.4} s   p999 {:.4} s",
            r.mean_response_s, r.p50_s, r.p95_s, r.p99_s, r.p999_s
        );
        println!(
            "  energy:  {:.0} J over the run   mean power {:.1} W",
            r.energy_j, r.mean_power_w
        );
        println!(
            "  faults:  {} crashes, {} stalls, {} stragglers -> {} timeouts, {} retries, {} reroutes, {} repairs",
            r.crashes, r.stalls, r.stragglers, r.timeouts, r.retries, r.reroutes, r.repairs
        );
        println!(
            "  control: {} activations, {} deactivations, {} dvfs up, {} dvfs down, {} shed toggles{}",
            r.activations,
            r.deactivations,
            r.dvfs_up,
            r.dvfs_down,
            r.shed_toggles,
            if r.forced_stop { "   [FORCED STOP]" } else { "" }
        );
        let domain_events =
            r.rack_crashes + r.pdu_losses + r.partitions + r.power_emergencies;
        if domain_events + r.breaker_opens + r.shed_backpressure > 0 {
            println!(
                "  domains: {} rack crashes, {} PDU losses, {} partitions, {} power emergencies \
                 ({} ladder actions) -> {} breakers opened, {} closed, {} backpressure sheds",
                r.rack_crashes,
                r.pdu_losses,
                r.partitions,
                r.power_emergencies,
                r.emergency_actions,
                r.breaker_opens,
                r.breaker_closes,
                r.shed_backpressure
            );
        }
    }
    println!("{}", r.conservation_line());
}
