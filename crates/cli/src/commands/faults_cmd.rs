//! `enprop faults` — fault-injection study: job time/energy and dispatcher
//! tail latency under node crashes, stalls and stragglers, with recovery.

use super::{ObsCtx, Opts};
use crate::output::render_csv;
use enprop_clustersim::{
    ClusterQueueSim, ClusterSim, ClusterSpec, EnpropError, FaultKind, FaultPlan,
    GroupFaultProfile, MtbfModel, RetryPolicy,
};
use enprop_workloads::catalog;

/// Knobs of the fault study (parsed from the command line in `main`).
#[derive(Debug, Clone, Copy)]
pub struct FaultOpts {
    /// Per-node MTBF in seconds; `None` defaults to 4× the fault-free job
    /// duration.
    pub mtbf_s: Option<f64>,
    /// Stall length in seconds (adds a stall fault kind when set).
    pub stall_s: Option<f64>,
    /// Straggler slowdown factor (adds a straggler fault kind when set).
    pub slowdown: Option<f64>,
    /// Retry budget after the first attempt.
    pub retries: u32,
    /// Attempt timeout as a multiple of the fault-free job duration.
    pub timeout_factor: f64,
    /// Dispatcher utilization for the queue comparison.
    pub utilization: f64,
    /// Jobs to sample under the plan.
    pub jobs: usize,
}

impl Default for FaultOpts {
    fn default() -> Self {
        FaultOpts {
            mtbf_s: None,
            stall_s: None,
            slowdown: None,
            retries: 3,
            timeout_factor: 3.0,
            utilization: 0.7,
            jobs: 200,
        }
    }
}

/// Run the fault-injection study and print a report (or CSV rows). The
/// sampled jobs land back-to-back on the telemetry trace when recording
/// is on: attempt/recovery/backoff spans, fault instants, retry counters.
pub fn faults_cmd(
    opts: &Opts,
    fo: &FaultOpts,
    a9: u32,
    k10: u32,
    ctx: &mut ObsCtx,
) -> Result<(), EnpropError> {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let workload = catalog::try_by_name(&name)?;
    if fo.jobs == 0 {
        return Err(EnpropError::invalid_parameter(
            "jobs",
            "must sample at least one job",
        ));
    }
    let cluster = ClusterSpec::a9_k10(a9, k10);
    let sim = ClusterSim::try_new(&workload, &cluster)?;
    let base = sim.run_job(opts.seed);

    let mtbf_s = fo.mtbf_s.unwrap_or(base.duration * 4.0);
    let mut kinds = vec![(1.0, FaultKind::Crash)];
    if let Some(duration_s) = fo.stall_s {
        kinds.push((1.0, FaultKind::Stall { duration_s }));
    }
    if let Some(slowdown) = fo.slowdown {
        kinds.push((1.0, FaultKind::Straggler { slowdown }));
    }
    let plan = FaultPlan::uniform(
        opts.seed,
        GroupFaultProfile {
            mtbf: MtbfModel::Exponential { mtbf_s },
            kinds,
        },
        cluster.groups.len(),
    );
    let policy = RetryPolicy {
        max_retries: fo.retries,
        timeout_factor: fo.timeout_factor,
        ..RetryPolicy::standard()
    };
    plan.validate()?;
    policy.validate()?;

    if !opts.csv {
        println!(
            "Fault injection: {} on {} ({} nodes)\n",
            workload.name,
            cluster.label(),
            cluster.node_count()
        );
        println!(
            "  fault-free job:  T = {:.3} s   E = {:.0} J",
            base.duration, base.energy
        );
        let mut kind_desc = vec!["crash".to_string()];
        if let Some(s) = fo.stall_s {
            kind_desc.push(format!("stall {s} s"));
        }
        if let Some(x) = fo.slowdown {
            kind_desc.push(format!("straggler {x}x"));
        }
        println!(
            "  plan: exponential MTBF {mtbf_s:.3} s/node; kinds (equal weight): {}",
            kind_desc.join(", ")
        );
        println!(
            "  policy: {} retries, {:.1}x timeout, backoff {:.0} s x{:.0}\n",
            policy.max_retries,
            policy.timeout_factor,
            policy.backoff_base_s,
            policy.backoff_multiplier
        );
    }

    let mut csv_rows = vec![vec![
        "job".to_string(),
        "duration_s".into(),
        "energy_j".into(),
        "attempts".into(),
        "crashes".into(),
        "stalls".into(),
        "stragglers".into(),
        "redispatched_ops".into(),
    ]];
    let mut dur_sum = 0.0;
    let mut energy_sum = 0.0;
    let mut attempts_sum = 0u64;
    let mut attempts_max = 0u32;
    let (mut crashes, mut stalls, mut stragglers) = (0u64, 0u64, 0u64);
    let mut redispatched = 0.0;
    let mut exhausted = 0usize;
    let mut completed = 0usize;
    let mut t_cursor = 0.0;
    for j in 0..fo.jobs {
        let seed = opts.seed.wrapping_add(j as u64 * 104_729);
        match sim.run_job_under_plan_obs(&plan, &policy, seed, t_cursor, &mut ctx.rec) {
            Ok(f) => {
                t_cursor += f.run.duration;
                completed += 1;
                dur_sum += f.run.duration;
                energy_sum += f.run.energy;
                attempts_sum += u64::from(f.attempts);
                attempts_max = attempts_max.max(f.attempts);
                crashes += u64::from(f.crashes);
                stalls += u64::from(f.stalls);
                stragglers += u64::from(f.stragglers);
                redispatched += f.redispatched_ops;
                if opts.csv {
                    csv_rows.push(vec![
                        j.to_string(),
                        format!("{}", f.run.duration),
                        format!("{}", f.run.energy),
                        f.attempts.to_string(),
                        f.crashes.to_string(),
                        f.stalls.to_string(),
                        f.stragglers.to_string(),
                        format!("{}", f.redispatched_ops),
                    ]);
                }
            }
            Err(EnpropError::RetryBudgetExhausted { .. }) => {
                t_cursor += base.duration;
                exhausted += 1;
            }
            Err(e) => return Err(e),
        }
    }
    if opts.csv {
        print!("{}", render_csv(&csv_rows));
        return Ok(());
    }
    if completed == 0 {
        return Err(EnpropError::ClusterDead {
            detail: format!(
                "all {} sampled jobs exhausted their retry budget; raise --retries or --mtbf",
                fo.jobs
            ),
        });
    }
    let n = completed as f64;
    println!("  {} jobs under faults ({} exhausted the retry budget):", fo.jobs, exhausted);
    println!(
        "    mean duration   {:.3} s  ({:+.1}% vs fault-free)",
        dur_sum / n,
        100.0 * (dur_sum / n / base.duration - 1.0)
    );
    println!(
        "    mean energy     {:.0} J  ({:+.1}%)",
        energy_sum / n,
        100.0 * (energy_sum / n / base.energy - 1.0)
    );
    println!(
        "    attempts        mean {:.2}  max {attempts_max}",
        attempts_sum as f64 / n
    );
    println!("    faults applied  {crashes} crashes, {stalls} stalls, {stragglers} stragglers");
    println!(
        "    re-dispatched   {:.1}% of job ops (mean)",
        100.0 * redispatched / n / workload.ops_per_job
    );

    // Dispatcher view: feed the failure-inflated service times into the
    // queue and compare against the clean pool at the same offered load.
    let pool = 16;
    let clean = ClusterQueueSim::new(&sim, pool, opts.seed)?;
    match ClusterQueueSim::with_faults_obs(&sim, pool, opts.seed, &plan, &policy, &mut ctx.rec) {
        Ok(faulted) => {
            let jobs = 40_000;
            let warmup = 4_000;
            let c = clean.run(fo.utilization, jobs, warmup, opts.seed)?;
            let f = faulted.run_obs(fo.utilization, jobs, warmup, opts.seed, &mut ctx.rec)?;
            println!(
                "\n  dispatcher queue at u = {:.2} ({} pooled service times, {} retried):",
                fo.utilization,
                pool,
                faulted.retried_jobs()
            );
            let q = |r: &enprop_clustersim::ClusterQueueResult| {
                (r.response.mean(), r.quantile(0.95).unwrap_or(f64::NAN))
            };
            let (cm, cq) = q(&c);
            let (fm, fq) = q(&f);
            println!("    clean    mean {cm:.3} s   p95 {cq:.3} s");
            println!("    faulted  mean {fm:.3} s   p95 {fq:.3} s");
            println!(
                "    inflation: mean {:+.1}%, p95 {:+.1}%",
                100.0 * (fm / cm - 1.0),
                100.0 * (fq / cq - 1.0)
            );
        }
        Err(e) => println!("\n  dispatcher queue skipped: {e}"),
    }
    Ok(())
}
