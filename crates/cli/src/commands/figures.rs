//! Regeneration of the paper's Figures 2 and 5–12 as data series (CSV) or
//! ASCII plots.

use super::{resolve_workload, response_grid, utilization_grid, ObsCtx, Opts};
use crate::diag;
use crate::output::{ascii_plot, render_csv, Series};
use enprop_clustersim::ClusterSpec;
use enprop_core::{normalized_power_samples, ClusterModel};
use enprop_explore::budget_mixes;
use enprop_metrics::{GridSpec, IdealCurve, PowerCurve, QuadraticCurve};
use enprop_obs::{Recorder, SwitchRecorder};
use enprop_workloads::Workload;

fn get_workload(name: &str) -> Workload {
    resolve_workload(name)
}

fn emit_series(opts: &Opts, series: Vec<Series>, x: &str, y: &str, log_y: bool) {
    if opts.csv {
        let mut rows = vec![vec!["series".to_string(), x.into(), y.into()]];
        for s in &series {
            for &(xx, yy) in &s.points {
                rows.push(vec![s.label.clone(), format!("{xx}"), format!("{yy}")]);
            }
        }
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", ascii_plot(&series, 72, 22, log_y, x, y));
    }
}

/// Fig. 2: the metric-relationship diagram — ideal, a super-linear and a
/// sub-linear curve with their DPR/IPR/EPM/PG values.
pub fn fig2_cmd(opts: &Opts) {
    println!("Figure 2: energy proportionality metric relationships\n");
    let ideal = IdealCurve::new(100.0);
    let sup = QuadraticCurve::new(30.0, 100.0, -0.3); // above ideal
    let sub = QuadraticCurve::new(0.0, 100.0, 0.6); // dips below ideal
    let grid = utilization_grid();
    let series = vec![
        Series {
            label: "ideal".into(),
            points: grid.iter().map(|&u| (u * 100.0, ideal.power(u))).collect(),
        },
        Series {
            label: format!(
                "super-linear (IPR {:.2}, EPM {:.2})",
                enprop_metrics::idle_to_peak_ratio(&sup),
                enprop_metrics::energy_proportionality_metric(&sup, GridSpec::default())
            ),
            points: grid.iter().map(|&u| (u * 100.0, sup.power(u))).collect(),
        },
        Series {
            label: format!(
                "sub-linear (IPR {:.2}, EPM {:.2})",
                enprop_metrics::idle_to_peak_ratio(&sub),
                enprop_metrics::energy_proportionality_metric(&sub, GridSpec::default())
            ),
            points: grid.iter().map(|&u| (u * 100.0, sub.power(u))).collect(),
        },
    ];
    emit_series(opts, series, "utilization [%]", "peak power [%]", false);
}

/// Figs. 5a–c: single-node proportionality curves (percent of peak vs
/// utilization) for EP, x264 and blackscholes (or one chosen workload).
pub fn fig5_cmd(opts: &Opts) {
    let names: Vec<String> = match &opts.workload {
        Some(w) => vec![w.clone()],
        None => vec!["EP".into(), "x264".into(), "blackscholes".into()],
    };
    for name in names {
        let w = get_workload(&name);
        println!("Figure 5 ({name}): single-node energy proportionality\n");
        let grid = utilization_grid();
        let mut series = vec![Series {
            label: "Ideal".into(),
            points: grid.iter().map(|&u| (u * 100.0, u * 100.0)).collect(),
        }];
        for node in ["K10", "A9"] {
            let m = ClusterModel::single_node(w.clone(), node);
            let curve = m.power_curve();
            series.push(Series {
                label: node.into(),
                points: grid
                    .iter()
                    .map(|&u| (u * 100.0, 100.0 * curve.normalized(u)))
                    .collect(),
            });
        }
        emit_series(opts, series, "utilization [%]", "peak power [%]", false);
        println!();
    }
}

/// Figs. 6a–c: single-node PPR vs utilization.
pub fn fig6_cmd(opts: &Opts) {
    let names: Vec<String> = match &opts.workload {
        Some(w) => vec![w.clone()],
        None => vec!["EP".into(), "x264".into(), "blackscholes".into()],
    };
    for name in names {
        let w = get_workload(&name);
        println!("Figure 6 ({name}): single-node PPR across utilization\n");
        let grid = utilization_grid();
        let mut series = Vec::new();
        for node in ["K10", "A9"] {
            let m = ClusterModel::single_node(w.clone(), node);
            let ppr = m.ppr_curve();
            series.push(Series {
                label: node.into(),
                points: grid.iter().map(|&u| (u * 100.0, ppr.ppr(u))).collect(),
            });
        }
        let unit = w.unit;
        emit_series(opts, series, "utilization [%]", &format!("PPR [({unit}/s)/W]"), true);
        println!();
    }
}

/// Fig. 7: cluster-wide energy proportionality of the 1 kW budget mixes.
pub fn fig7_cmd(opts: &Opts) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = get_workload(&name);
    println!("Figure 7 ({name}): cluster-wide energy proportionality, 1 kW budget\n");
    let grid = utilization_grid();
    let mut series = vec![Series {
        label: "Ideal".into(),
        points: grid.iter().map(|&u| (u * 100.0, u * 100.0)).collect(),
    }];
    for mix in budget_mixes(1000.0, 4) {
        let m = ClusterModel::new(w.clone(), mix.clone());
        let curve = m.power_curve();
        series.push(Series {
            label: mix.label(),
            points: grid
                .iter()
                .map(|&u| (u * 100.0, 100.0 * curve.normalized(u)))
                .collect(),
        });
    }
    emit_series(opts, series, "utilization [%]", "peak power [%]", false);
}

/// Fig. 8: cluster-wide PPR of the budget mixes.
pub fn fig8_cmd(opts: &Opts) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = get_workload(&name);
    println!("Figure 8 ({name}): cluster-wide PPR, 1 kW budget\n");
    let grid = utilization_grid();
    let mut series = Vec::new();
    for mix in budget_mixes(1000.0, 4) {
        let m = ClusterModel::new(w.clone(), mix.clone());
        let ppr = m.ppr_curve();
        series.push(Series {
            label: mix.label(),
            points: grid.iter().map(|&u| (u * 100.0, ppr.ppr(u))).collect(),
        });
    }
    let unit = w.unit;
    emit_series(opts, series, "utilization [%]", &format!("PPR [({unit}/s)/W]"), false);
}

/// The Pareto-configuration mixes plotted in Figs. 9–12 (≤ 32 A9, ≤ 12
/// K10; the paper's labeled node-count pairs).
pub fn paper_pareto_mixes() -> Vec<ClusterSpec> {
    [(32, 12), (25, 10), (25, 8), (25, 7), (25, 5)]
        .into_iter()
        .map(|(a, k)| ClusterSpec::a9_k10(a, k))
        .collect()
}

/// Figs. 9 (EP) / 10 (x264): proportionality of Pareto configurations
/// against the maximum configuration's ideal line.
pub fn fig9_cmd(opts: &Opts, default_workload: &str) {
    let name = opts.workload.clone().unwrap_or_else(|| default_workload.into());
    let w = get_workload(&name);
    let fig = if name == "x264" { "10" } else { "9" };
    println!("Figure {fig} ({name}): proportionality of Pareto-optimal configurations\n");
    let reference = ClusterModel::new(w.clone(), ClusterSpec::a9_k10(32, 12));
    let ref_peak = reference.busy_power_w();
    let grid = utilization_grid();
    let mut series = vec![Series {
        label: "Ideal".into(),
        points: grid.iter().map(|&u| (u * 100.0, u * 100.0)).collect(),
    }];
    for mix in paper_pareto_mixes() {
        let m = ClusterModel::new(w.clone(), mix.clone());
        let samples = normalized_power_samples(&m, ref_peak, GridSpec::new(100));
        series.push(Series {
            label: mix.label(),
            points: grid
                .iter()
                .map(|&u| (u * 100.0, samples.power(u)))
                .collect(),
        });
    }
    emit_series(opts, series, "utilization [%]", "peak power [%] (of 32A9:12K10)", false);
}

/// Figs. 11 (EP) / 12 (x264): 95th-percentile response time of the
/// sub-linear heterogeneous mixes. When telemetry is on, a small traced
/// dispatcher run backs the analytic curves with concrete job spans,
/// retries, DVFS transitions and queue-depth samples.
pub fn fig11_cmd(opts: &Opts, default_workload: &str, ctx: &mut ObsCtx) {
    let name = opts.workload.clone().unwrap_or_else(|| default_workload.into());
    let w = get_workload(&name);
    let fig = if name == "x264" { "12" } else { "11" };
    println!("Figure {fig} ({name}): 95th-percentile response time of heterogeneous mixes\n");
    let grid = response_grid();
    let mut series = Vec::new();
    for mix in paper_pareto_mixes() {
        let m = ClusterModel::new(w.clone(), mix.clone());
        series.push(Series {
            label: mix.label(),
            points: grid
                .iter()
                .map(|&u| (u * 100.0, m.p95_response_time(u)))
                .collect(),
        });
    }
    emit_series(opts, series, "utilization [%]", "p95 response time [s]", true);
    if ctx.rec.enabled() {
        traced_queue_probe(opts, &w, &mut ctx.rec);
    }
}

/// Trace-only companion to [`fig11_cmd`]: run a lab-scale dispatcher
/// under a mild crash plan so the exported trace carries every series a
/// consumer expects (job spans, `dispatch.retries`,
/// `node.dvfs_transitions`, `dispatch.queue_depth`). Prints nothing to
/// stdout; the counters are pre-declared so they exist in the metrics
/// snapshot even at zero.
fn traced_queue_probe(opts: &Opts, w: &Workload, rec: &mut SwitchRecorder) {
    use enprop_clustersim::{
        ClusterQueueSim, ClusterSim, FaultKind, FaultPlan, GroupFaultProfile, MtbfModel,
        RetryPolicy,
    };
    if let Some(m) = rec.as_memory_mut() {
        m.declare_counter("dispatch.retries");
        m.declare_counter("node.dvfs_transitions");
        m.declare_counter("cluster.jobs_completed");
        m.declare_counter("dispatch.jobs");
    }
    let cluster = ClusterSpec::a9_k10(8, 4);
    let sim = match ClusterSim::try_new(w, &cluster) {
        Ok(s) => s,
        Err(e) => {
            diag::info(format!("fig11 queue probe skipped: {e}"));
            return;
        }
    };
    let base = sim.run_job(opts.seed);
    let plan = FaultPlan::uniform(
        opts.seed,
        GroupFaultProfile {
            mtbf: MtbfModel::Exponential {
                mtbf_s: base.duration * 2.0,
            },
            kinds: vec![(1.0, FaultKind::Crash)],
        },
        cluster.groups.len(),
    );
    let policy = RetryPolicy {
        max_retries: 6,
        timeout_factor: 2.0,
        ..RetryPolicy::standard()
    };
    let outcome = ClusterQueueSim::with_faults_obs(&sim, 8, opts.seed, &plan, &policy, rec)
        .and_then(|q| q.run_obs(0.7, 2000, 200, opts.seed, rec));
    match outcome {
        Ok(r) => diag::info(format!(
            "fig11 queue probe traced: mean response {:.3} s over 2000 jobs",
            r.response.mean()
        )),
        Err(e) => diag::info(format!("fig11 queue probe skipped: {e}")),
    }
}

/// Extension: the dynamic-switching envelope (shed-brawny ladder) against
/// the static reference and the ideal line.
pub fn dynamic_cmd(opts: &Opts) {
    use enprop_explore::DynamicEnvelope;
    use enprop_metrics::{energy_proportionality_metric, GridSpec as MGrid};
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = get_workload(&name);
    println!("Extension ({name}): dynamic configuration switching (shed brawny first)\n");
    let grid = utilization_grid();
    let mgrid = MGrid::new(100);
    let envelope = DynamicEnvelope::shed_brawny_ladder(&w, 32, 12);
    let static_model = ClusterModel::new(w.clone(), ClusterSpec::a9_k10(32, 12));
    let static_peak = static_model.busy_power_w();
    let series = vec![
        Series {
            label: "Ideal".into(),
            points: grid.iter().map(|&u| (u * 100.0, u * 100.0)).collect(),
        },
        Series {
            label: "static 32 A9 : 12 K10".into(),
            points: grid
                .iter()
                .map(|&u| (u * 100.0, 100.0 * static_model.power_at(u) / static_peak))
                .collect(),
        },
        Series {
            label: "dynamic envelope".into(),
            points: grid
                .iter()
                .map(|&u| (u * 100.0, 100.0 * envelope.serve(u).1 / static_peak))
                .collect(),
        },
    ];
    emit_series(opts, series, "utilization [%]", "peak power [%]", false);
    if !opts.csv {
        let d = energy_proportionality_metric(&envelope.power_curve(mgrid), mgrid);
        let s = static_model.metrics().epm;
        println!(
            "\nEPM: static {s:.2} -> dynamic {d:.2} \
             ({} rungs active; envelope ignores switching latency)",
            envelope.active_configurations(mgrid)
        );
        for u in [0.1, 0.3, 0.5, 0.8] {
            let (label, watts) = envelope.serve(u);
            println!("  at {:>3.0}% load: {label} ({watts:.0} W)", u * 100.0);
        }
    }
}

/// Extension: the Hsu & Poole quadratic power-curve ablation.
pub fn ablation_cmd(opts: &Opts) {
    use enprop_core::quadratic_ablation;
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = get_workload(&name);
    println!("Ablation ({name}): linear model curve vs quadratic server curve (Hsu & Poole)\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "node", "curvature", "DPR", "IPR", "EPM lin", "EPM quad", "LDR literal"
    );
    for node in ["A9", "K10"] {
        for curv in [-0.4, 0.0, 0.4] {
            let a = quadratic_ablation(&w, node, curv);
            println!(
                "{:<6} {:>10.1} {:>10.2} {:>10.2} {:>10.3} {:>12.3} {:>12.4}",
                node,
                curv,
                a.quadratic.dpr,
                a.quadratic.ipr,
                a.linear.epm,
                a.quadratic.epm,
                a.quadratic.ldr_literal
            );
        }
    }
    diag::note(
        "\nDPR/IPR are endpoint-only and cannot see the curve's interior; EPM and\n\
         the literal LDR diverge once servers deviate from linearity — the paper's\n\
         §III-B collapse is a property of its linear model, not of real servers.",
    );
}

/// Proportionality Gap PG(u) table (Table 3's per-utilization metric) for
/// both nodes and the budget mixes.
pub fn pg_cmd(opts: &Opts) {
    use enprop_metrics::proportionality_gap;
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = get_workload(&name);
    println!("Proportionality Gap PG(u) for {name} (lower = more proportional)\n");
    let grid = [0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0];
    let mut rows = vec![{
        let mut h = vec!["System".to_string()];
        h.extend(grid.iter().map(|u| format!("u={:.0}%", u * 100.0)));
        h
    }];
    let mut push_system = |label: String, model: &ClusterModel| {
        let curve = model.power_curve();
        let mut row = vec![label];
        for &u in &grid {
            row.push(match proportionality_gap(&curve, u) {
                Some(pg) => format!("{pg:.2}"),
                None => "-".into(),
            });
        }
        rows.push(row);
    };
    for node in ["A9", "K10"] {
        push_system(format!("1 {node}"), &ClusterModel::single_node(w.clone(), node));
    }
    for mix in budget_mixes(1000.0, 4) {
        push_system(mix.label(), &ClusterModel::new(w.clone(), mix.clone()));
    }
    if opts.csv {
        print!("{}", crate::output::render_csv(&rows));
    } else {
        print!("{}", crate::output::render_table(&rows));
        diag::note("\nPG shrinks toward full utilization for every system (idle power\namortizes) — why co-location work pushes datacenters to run hot.");
    }
}
