//! One module per experiment family; each command regenerates a table or
//! figure of the paper and prints it.

pub mod characterize_cmd;
pub mod explore_cmds;
pub mod faults_cmd;
pub mod figures;
pub mod strategies;
pub mod tables;

/// Shared command options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Emit CSV instead of human-readable tables/plots.
    pub csv: bool,
    /// Simulation sample count per measurement.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional workload override.
    pub workload: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            csv: false,
            samples: 5,
            seed: 7,
            workload: None,
        }
    }
}

/// The utilization grid the paper plots against (10%..100%).
pub fn utilization_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// The denser 20%..95% grid of the response-time figures.
pub fn response_grid() -> Vec<f64> {
    (4..=19).map(|i| i as f64 / 20.0).collect()
}
