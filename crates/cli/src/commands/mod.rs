//! One module per experiment family; each command regenerates a table or
//! figure of the paper and prints it.

pub mod characterize_cmd;
pub mod explore_cmds;
pub mod faults_cmd;
pub mod figures;
pub mod obs_cmd;
pub mod serve_cmd;
pub mod strategies;
pub mod tables;

use enprop_obs::SwitchRecorder;
use enprop_workloads::{catalog, Workload};
use std::path::PathBuf;

/// Telemetry context threaded through instrumented commands: the runtime
/// on/off recorder plus where (if anywhere) to write the exports.
pub struct ObsCtx {
    /// `On` when `--trace-out` or `--metrics-out` was given.
    pub rec: SwitchRecorder,
    /// Chrome-trace (or `.jsonl` event-stream) output path.
    pub trace_out: Option<PathBuf>,
    /// Metrics-snapshot JSON (or `.csv`) output path.
    pub metrics_out: Option<PathBuf>,
}

/// Look a workload up by name, or print the catalog to stderr and exit
/// with the invalid-configuration code (the one place every command's
/// `--workload` diagnostics funnel through).
pub fn resolve_workload(name: &str) -> Workload {
    catalog::try_by_name(name).unwrap_or_else(|e| {
        crate::diag::error(e.to_string());
        std::process::exit(e.exit_code());
    })
}

/// Shared command options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Emit CSV instead of human-readable tables/plots.
    pub csv: bool,
    /// Simulation sample count per measurement.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional workload override.
    pub workload: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            csv: false,
            samples: 5,
            seed: 7,
            workload: None,
        }
    }
}

/// The utilization grid the paper plots against (10%..100%).
pub fn utilization_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// The denser 20%..95% grid of the response-time figures.
pub fn response_grid() -> Vec<f64> {
    (4..=19).map(|i| i as f64 / 20.0).collect()
}
