//! The synthesis command: every energy strategy this repository models,
//! side by side — the paper's static mixes, its sub-linear heterogeneous
//! configurations, the sleep modes its introduction argues against, and
//! the dynamic switching it defers to future work.

use super::Opts;
use crate::output::{render_csv, render_table};
use enprop_clustersim::ClusterSpec;
use enprop_core::ClusterModel;
use enprop_explore::{DynamicEnvelope, SleepManagedCluster, SleepPolicy};
use enprop_metrics::{energy_proportionality_metric, GridSpec};
use enprop_workloads::catalog;

/// Diurnal load profile shared with the `diurnal_datacenter` example.
fn load_at_hour(h: f64) -> f64 {
    let phase = (h - 15.0) / 24.0 * std::f64::consts::TAU;
    (0.525 + 0.375 * phase.cos()).clamp(0.0, 1.0)
}

/// One strategy's scorecard.
struct Row {
    name: String,
    epm: f64,
    idle_w: f64,
    peak_w: f64,
    p95_steady_ms: f64,
    p95_spiky_ms: f64,
    daily_kwh: f64,
}

fn daily_kwh<F: Fn(f64) -> f64>(power_at: F) -> f64 {
    (0..24)
        .map(|h| power_at(load_at_hour(h as f64)) * 3600.0)
        .sum::<f64>()
        / 3.6e6
}

/// Compare all strategies for one workload under the shared diurnal
/// profile. "Spiky" p95 assumes half the observations land in a traffic
/// spike that outruns sleeping capacity (the §I scenario).
pub fn strategies_cmd(opts: &Opts) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = match catalog::try_by_name(&name) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    };
    println!("Energy strategies for {name} (load axis: fraction of 32 A9 : 12 K10 capacity)\n");

    let grid = GridSpec::new(100);
    let reference = ClusterModel::new(w.clone(), ClusterSpec::a9_k10(32, 12));
    let ref_thru = reference.peak_throughput();
    let steady = 0.30;
    let mut rows: Vec<Row> = Vec::new();

    // Static configurations: the reference mix, the paper's sub-linear
    // pick, and both homogeneous extremes scaled to the same capacity
    // regime.
    for (label, a9, k10) in [
        ("static 32 A9 : 12 K10", 32u32, 12u32),
        ("static 25 A9 : 7 K10 (sub-linear)", 25, 7),
        ("static 0 A9 : 16 K10", 0, 16),
        ("static 128 A9 : 0 K10", 128, 0),
    ] {
        let m = ClusterModel::new(w.clone(), ClusterSpec::a9_k10(a9, k10));
        let scale = ref_thru / m.peak_throughput();
        let local = |u: f64| (u * scale).min(0.95);
        let p95 = m.p95_response_time(local(steady)) * 1e3;
        rows.push(Row {
            name: label.into(),
            epm: m.metrics().epm,
            idle_w: m.idle_power_w(),
            peak_w: m.busy_power_w(),
            p95_steady_ms: p95,
            p95_spiky_ms: p95, // always-on: spikes cost nothing extra
            daily_kwh: daily_kwh(|u| m.power_at((u * scale).min(1.0))),
        });
    }

    // Dynamic switching over the shed-brawny ladder.
    let envelope = DynamicEnvelope::shed_brawny_ladder(&w, 32, 12);
    let dyn_curve = envelope.power_curve(grid);
    let p95_dyn = reference.p95_response_time(steady) * 1e3; // serves spikes at full strength
    rows.push(Row {
        name: "dynamic shed-brawny ladder".into(),
        epm: energy_proportionality_metric(&dyn_curve, grid),
        idle_w: envelope.serve(0.0).1,
        peak_w: envelope.serve(1.0).1,
        p95_steady_ms: p95_dyn,
        p95_spiky_ms: p95_dyn,
        daily_kwh: daily_kwh(|u| envelope.serve(u).1),
    });

    // Sleep-managed homogeneous K10 cluster (the §I strawman).
    let sleepers = SleepManagedCluster::homogeneous(&w, "K10", 16, SleepPolicy::barely_alive());
    let sleep_scale = ref_thru / sleepers.model.peak_throughput();
    rows.push(Row {
        name: "sleep-managed 16 K10 (barely-alive)".into(),
        epm: energy_proportionality_metric(&sleepers.power_curve(grid), grid),
        idle_w: sleepers.power_at(0.0),
        peak_w: sleepers.power_at(1.0),
        p95_steady_ms: sleepers.p95_response_time((steady * sleep_scale).min(0.95), 0.0) * 1e3,
        p95_spiky_ms: sleepers.p95_response_time((steady * sleep_scale).min(0.95), 0.5) * 1e3,
        daily_kwh: daily_kwh(|u| sleepers.power_at((u * sleep_scale).min(1.0))),
    });

    let mut table = vec![vec![
        "Strategy".to_string(),
        "EPM".into(),
        "idle [W]".into(),
        "peak [W]".into(),
        "p95@30% [ms]".into(),
        "p95 spiky [ms]".into(),
        "daily [kWh]".into(),
    ]];
    for r in &rows {
        table.push(vec![
            r.name.clone(),
            format!("{:.2}", r.epm),
            format!("{:.0}", r.idle_w),
            format!("{:.0}", r.peak_w),
            format!("{:.1}", r.p95_steady_ms),
            format!("{:.1}", r.p95_spiky_ms),
            format!("{:.2}", r.daily_kwh),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&table));
    } else {
        print!("{}", render_table(&table));
        println!(
            "\nReading guide: EPM > 1 means sub-linear on average. Sleep wins the power\n\
             columns but loses the spiky-p95 column (the paper's §I argument); the\n\
             sub-linear heterogeneous mix and the dynamic ladder keep p95 flat while\n\
             cutting energy — the paper's thesis, extended."
        );
    }
}
