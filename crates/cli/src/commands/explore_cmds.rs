//! Configuration-space commands: footnote-4 counting, Pareto frontier and
//! sweet-region queries.

use super::Opts;
use crate::diag;
use crate::output::{fmt_sig, render_csv, render_table};
use enprop_clustersim::EnpropError;
use enprop_explore::{
    configurations, count_configurations, evaluate_space_with, pareto_front, stream_pareto_front,
    sweet_spot, EvalOptions, EvaluatedConfig, StreamOptions, TypeSpace,
};
use enprop_obs::{Recorder, Track};
use enprop_workloads::{catalog, Workload};

/// Evaluate a configuration space on the pool with memoized operating
/// points, narrating what the pipeline did: pool size, chunking and cache
/// totals go to `-v` diagnostics, and (when recording) to the `explore`
/// telemetry track — one span per source chunk in config-index time plus
/// cache hit/miss counters. Everything emitted is deterministic for a
/// given space: chunk boundaries come from the source length and thread
/// count, and cache totals are interleaving-independent (see
/// `EvalCache`).
fn evaluate_space_diag(
    w: &Workload,
    types: &[TypeSpace],
    ctx: &mut super::ObsCtx,
) -> Vec<EvaluatedConfig> {
    let (evald, stats) = evaluate_space_with(w, configurations(types), EvalOptions::default());
    diag::info(format!(
        "evaluated {} configurations on {} thread(s) ({} chunk(s) of <= {})",
        stats.evaluated, stats.threads, stats.chunks, stats.chunk_len
    ));
    if let Some(c) = stats.cache {
        diag::info(format!(
            "eval cache: {} hits / {} misses ({} operating points)",
            c.hits, c.misses, c.entries
        ));
    }
    if let Some(rec) = ctx.rec.as_memory_mut() {
        for chunk in 0..stats.chunks {
            let start = chunk * stats.chunk_len;
            let end = (start + stats.chunk_len).min(stats.evaluated);
            rec.span_begin(start as f64, Track::Explore, "explore.chunk", chunk as u64);
            rec.span_end(end as f64, Track::Explore, "explore.chunk", chunk as u64);
        }
        let t_end = stats.evaluated as f64;
        rec.counter(t_end, Track::Explore, "explore.configs", stats.evaluated as u64);
        if let Some(c) = stats.cache {
            rec.counter(t_end, Track::Explore, "explore.cache.hits", c.hits);
            rec.counter(t_end, Track::Explore, "explore.cache.misses", c.misses);
        }
    }
    evald
}

/// Footnote 4: the configuration count for 10 ARM + 10 AMD nodes.
pub fn footnote4_cmd(_opts: &Opts) {
    println!("Footnote 4: configuration-space size\n");
    let cases = [(10u32, 10u32), (32, 12), (4, 2)];
    for (a9, k10) in cases {
        let types = [TypeSpace::a9(a9), TypeSpace::k10(k10)];
        println!(
            "  {a9} A9 + {k10} K10  ->  {} configurations",
            count_configurations(&types)
        );
    }
    println!("\n(the paper's example: 10 + 10 nodes -> 36,380)");
}

/// Pareto frontier of a bounded configuration space for one workload.
pub fn pareto_cmd(opts: &Opts, a9_max: u32, k10_max: u32, ctx: &mut super::ObsCtx) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = super::resolve_workload(&name);
    let types = [TypeSpace::a9(a9_max), TypeSpace::k10(k10_max)];
    let n = count_configurations(&types);
    println!(
        "Energy-deadline Pareto frontier: {name} over <= {a9_max} A9 + <= {k10_max} K10 \
         ({n} configurations)\n"
    );
    let evald = evaluate_space_diag(&w, &types, ctx);
    let front = pareto_front(&evald);
    let mut rows = vec![vec![
        "Configuration".into(),
        "cores/freq".into(),
        "T_job [s]".into(),
        "E_job [J]".into(),
        "P_busy [W]".into(),
        "P_idle [W]".into(),
    ]];
    for e in front.iter().take(40) {
        let cf: Vec<String> = e
            .cluster
            .groups
            .iter()
            .filter(|g| g.count > 0)
            .map(|g| format!("{}x{}c@{:.1}GHz", g.spec.name, g.cores, g.freq / 1e9))
            .collect();
        rows.push(vec![
            e.cluster.label(),
            cf.join(" "),
            fmt_sig(e.job_time),
            fmt_sig(e.job_energy),
            fmt_sig(e.busy_power_w),
            fmt_sig(e.idle_power_w),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
        if front.len() > 40 {
            println!("… {} more frontier points", front.len() - 40);
        }
        println!("\nfrontier size: {} of {} configurations", front.len(), evald.len());
    }
}

/// Options of the `space` command.
#[derive(Debug, Clone)]
pub struct SpaceOpts {
    /// The `--types a9:10,k10:10,pi4:16` space description.
    pub types: String,
    /// Stream with dominance pruning instead of materializing.
    pub stream: bool,
    /// Evaluate only the first N configurations of enumeration order.
    pub max_configs: Option<u64>,
    /// Streaming chunk size override.
    pub chunk: Option<usize>,
}

/// Materializing this many `EvaluatedConfig`s is where O(space) memory
/// stops being funny; beyond it the command insists on `--stream`.
const MATERIALIZE_LIMIT: u64 = 2_000_000;

fn parse_type_list(arg: &str) -> Result<Vec<TypeSpace>, EnpropError> {
    let mut types = Vec::new();
    for part in arg.split(',') {
        let (name, count) = part.split_once(':').ok_or_else(|| {
            EnpropError::invalid_parameter(
                "--types",
                format!("expected NAME:MAX_NODES entries, got {part:?}"),
            )
        })?;
        let max_nodes: u32 = count.trim().parse().map_err(|_| {
            EnpropError::invalid_parameter(
                "--types",
                format!("max nodes in {part:?} is not a number"),
            )
        })?;
        types.push(TypeSpace::try_named(name.trim(), max_nodes)?);
    }
    if types.is_empty() {
        return Err(EnpropError::invalid_parameter(
            "--types",
            "at least one NAME:MAX_NODES entry required",
        ));
    }
    Ok(types)
}

/// `enprop space`: DALEK-style configuration-space exploration over any
/// mix of catalog node types, with the streaming dominance-pruned
/// evaluator for mega-scale spaces.
pub fn space_cmd(opts: &Opts, so: &SpaceOpts, ctx: &mut super::ObsCtx) -> Result<(), EnpropError> {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    // The DALEK catalog carries profiles for all six node types and keeps
    // the A9/K10 rows identical to the base catalog, so any --types mix
    // resolves against one workload object.
    let w = catalog::dalek(&name).unwrap_or_else(|| super::resolve_workload(&name));
    let types = parse_type_list(&so.types)?;
    let total = count_configurations(&types);

    println!("Configuration space: {name} over {}\n", so.types);
    let mut fleet = vec![vec![
        "Type".into(),
        "max nodes".into(),
        "tuples".into(),
        "fleet idle [W]".into(),
        "fleet switch [W]".into(),
    ]];
    for t in &types {
        fleet.push(vec![
            t.spec.name.to_string(),
            t.max_nodes.to_string(),
            t.tuple_count().to_string(),
            fmt_sig(t.fleet_idle_w()),
            fmt_sig(t.fleet_switch_w()),
        ]);
    }
    if opts.csv {
        print!("{}", render_csv(&fleet));
    } else {
        print!("{}", render_table(&fleet));
    }
    println!("\ntotal configurations: {total}");

    let (front, stats) = if so.stream {
        let stream_opts = StreamOptions {
            chunk: so.chunk.unwrap_or_else(|| StreamOptions::default().chunk),
            max_configs: so.max_configs,
            ..StreamOptions::default()
        };
        stream_pareto_front(&w, &types, stream_opts)
    } else {
        let cap = so.max_configs.map_or(total, |m| m.min(total));
        if cap > MATERIALIZE_LIMIT {
            return Err(EnpropError::invalid_config(format!(
                "{cap} configurations would be materialized (> {MATERIALIZE_LIMIT}); \
                 pass --stream for O(frontier) memory, or cap with --max-configs"
            )));
        }
        let cap_usize = usize::try_from(cap).unwrap_or(usize::MAX);
        let configs: Vec<_> = configurations(&types).take(cap_usize).collect();
        let (evald, stats) = evaluate_space_with(&w, configs, EvalOptions::default());
        let points = enprop_explore::pareto_indices(&evald, |e| (e.job_time, e.job_energy))
            .into_iter()
            .map(|i| enprop_explore::ParetoPoint {
                index: i as u64,
                eval: evald[i].clone(),
            })
            .collect();
        (points, stats)
    };

    let evaluated = stats.evaluated as u64 + stats.pruned;
    diag::info(format!(
        "{} of {evaluated} configurations pruned before evaluation ({:.1}%), \
         {} fully evaluated on {} thread(s)",
        stats.pruned,
        100.0 * stats.pruned as f64 / evaluated.max(1) as f64,
        stats.evaluated,
        stats.threads
    ));
    diag::info(format!(
        "peak evaluation buffer: {} KiB; frontier {} point(s)",
        stats.peak_buffer_bytes / 1024,
        front.len()
    ));
    if let Some(rec) = ctx.rec.as_memory_mut() {
        let t_end = evaluated as f64;
        rec.counter(t_end, Track::Explore, "explore.configs", evaluated);
        rec.counter(t_end, Track::Explore, "explore.stream.pruned", stats.pruned);
        rec.counter(
            t_end,
            Track::Explore,
            "explore.stream.frontier_len",
            front.len() as u64,
        );
        rec.counter(
            t_end,
            Track::Explore,
            "explore.stream.peak_buffer_bytes",
            stats.peak_buffer_bytes as u64,
        );
        if let Some(c) = stats.cache {
            rec.counter(t_end, Track::Explore, "explore.cache.hits", c.hits);
            rec.counter(t_end, Track::Explore, "explore.cache.misses", c.misses);
        }
    }

    let mut rows = vec![vec![
        "Configuration".into(),
        "cores/freq".into(),
        "T_job [s]".into(),
        "E_job [J]".into(),
        "P_busy [W]".into(),
        "P_idle [W]".into(),
    ]];
    for p in front.iter().take(40) {
        let e = &p.eval;
        let cf: Vec<String> = e
            .cluster
            .groups
            .iter()
            .filter(|g| g.count > 0)
            .map(|g| format!("{}x{}c@{:.1}GHz", g.spec.name, g.cores, g.freq / 1e9))
            .collect();
        rows.push(vec![
            e.cluster.label(),
            cf.join(" "),
            fmt_sig(e.job_time),
            fmt_sig(e.job_energy),
            fmt_sig(e.busy_power_w),
            fmt_sig(e.idle_power_w),
        ]);
    }
    println!();
    if opts.csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows));
        if front.len() > 40 {
            println!("… {} more frontier points", front.len() - 40);
        }
        println!(
            "\nfrontier: {} of {evaluated} configurations ({} pruned before evaluation)",
            front.len(),
            stats.pruned
        );
    }
    Ok(())
}

/// Sweet-spot query: minimum-energy configuration under a deadline.
pub fn sweet_cmd(opts: &Opts, a9_max: u32, k10_max: u32, deadline: f64, ctx: &mut super::ObsCtx) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = super::resolve_workload(&name);
    let types = [TypeSpace::a9(a9_max), TypeSpace::k10(k10_max)];
    let evald = evaluate_space_diag(&w, &types, ctx);
    println!("Sweet spot for {name} with deadline {deadline} s:\n");
    match sweet_spot(&evald, deadline) {
        Some(best) => {
            println!("  configuration : {}", best.cluster.label());
            for g in best.cluster.groups.iter().filter(|g| g.count > 0) {
                println!(
                    "    {} x{}: {} cores @ {:.2} GHz",
                    g.spec.name,
                    g.count,
                    g.cores,
                    g.freq / 1e9
                );
            }
            println!("  job time      : {} s", fmt_sig(best.job_time));
            println!("  job energy    : {} J", fmt_sig(best.job_energy));
            println!("  nameplate     : {} W", fmt_sig(best.nameplate_w));
        }
        None => println!("  no configuration meets the deadline"),
    }
}

/// Power trace of one observation interval (simulated WT210 log). The
/// trace itself is derived from the recorder's power-sample stream; with
/// `--trace-out` the same samples land in the exported trace.
pub fn trace_cmd(opts: &Opts, utilization: f64, ctx: &mut super::ObsCtx) {
    use enprop_clustersim::{ClusterSim, ClusterSpec};
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = super::resolve_workload(&name);
    let cluster = ClusterSpec::a9_k10(8, 2);
    let sim = ClusterSim::new(&w, &cluster);
    let mean = sim.sample_jobs(3, opts.seed);
    let period = mean.duration * 20.0;
    let trace = match ctx.rec.as_memory_mut() {
        Some(m) => sim.power_trace_obs(utilization, period, opts.seed, m),
        None => sim.power_trace(utilization, period, opts.seed),
    };
    println!(
        "Power trace: {name} on {} at {:.0}% load over {:.2} s\n",
        cluster.label(),
        utilization * 100.0,
        period
    );
    if opts.csv {
        println!("t_start,watts");
        for &(t, p) in &trace.segments {
            println!("{t},{p}");
        }
    } else {
        for &(t, p) in trace.segments.iter().take(24) {
            let bar = "#".repeat((p / trace.mean_power() * 24.0) as usize);
            println!("  {t:>8.3} s  {p:>8.1} W  {bar}");
        }
        if trace.segments.len() > 24 {
            println!("  … {} more segments", trace.segments.len() - 24);
        }
        println!(
            "\nmean power {:.1} W; energy {:.1} J (= integral of the trace)",
            trace.mean_power(),
            trace.energy()
        );
    }
}

/// Heuristic search demo: sweet spot without enumeration.
pub fn search_cmd(opts: &Opts, a9_max: u32, k10_max: u32, deadline: f64) {
    use enprop_explore::local_search;
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = super::resolve_workload(&name);
    let types = [TypeSpace::a9(a9_max), TypeSpace::k10(k10_max)];
    let space = count_configurations(&types);
    let result = local_search(&w, &types, deadline, 12, opts.seed);
    println!(
        "Heuristic search: {name}, deadline {deadline} s over a {space}-configuration space\n"
    );
    match result.best {
        Some(best) => {
            println!("  found         : {}", best.cluster.label());
            for g in best.cluster.groups.iter().filter(|g| g.count > 0) {
                println!(
                    "    {} x{}: {} cores @ {:.2} GHz",
                    g.spec.name, g.count, g.cores, g.freq / 1e9
                );
            }
            println!("  job time      : {} s", fmt_sig(best.job_time));
            println!("  job energy    : {} J", fmt_sig(best.job_energy));
        }
        None => println!("  no feasible configuration found"),
    }
    println!(
        "  evaluations   : {} ({:.1}% of enumeration)",
        result.evaluations,
        100.0 * result.evaluations as f64 / space as f64
    );
    println!(
        "  memo hits     : {} revisited states answered without the model",
        result.cache_hits
    );
}

/// Export the evaluated configuration space as CSV (for external
/// analysis/plotting tools).
pub fn export_cmd(opts: &Opts, a9_max: u32, k10_max: u32, ctx: &mut super::ObsCtx) {
    let name = opts.workload.clone().unwrap_or_else(|| "EP".into());
    let w = super::resolve_workload(&name);
    let types = [TypeSpace::a9(a9_max), TypeSpace::k10(k10_max)];
    let evald = evaluate_space_diag(&w, &types, ctx);
    let front: std::collections::HashSet<String> = pareto_front(&evald)
        .iter()
        .map(|e| format!("{:?}", e.cluster))
        .collect();
    println!("workload,a9,k10,a9_cores,a9_ghz,k10_cores,k10_ghz,job_time_s,job_energy_j,busy_w,idle_w,nameplate_w,on_pareto_front");
    for e in &evald {
        // Absent types are omitted from the group list; look up by name.
        let g = |name: &str| e.cluster.groups.iter().find(|g| g.spec.name == name);
        let (a9n, a9c, a9f) = g("A9").map_or((0, 0, 0.0), |g| (g.count, g.cores, g.freq / 1e9));
        let (k10n, k10c, k10f) =
            g("K10").map_or((0, 0, 0.0), |g| (g.count, g.cores, g.freq / 1e9));
        println!(
            "{},{a9n},{k10n},{a9c},{a9f},{k10c},{k10f},{},{},{},{},{},{}",
            w.name,
            e.job_time,
            e.job_energy,
            e.busy_power_w,
            e.idle_power_w,
            e.nameplate_w,
            front.contains(&format!("{:?}", e.cluster))
        );
    }
}
