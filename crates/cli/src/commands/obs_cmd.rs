//! `enprop obs` — the trace-query family: filter recorded JSONL event
//! streams (`obs query`), reconstruct the serving plane's per-window
//! report from its `win.*` gauges (`obs report`), and the simulated
//! power-meter trace (`obs power`, formerly top-level `enprop trace`).
//!
//! Everything here consumes the deterministic `.jsonl` stream that any
//! command writes via `--trace-out FILE.jsonl`; percentile summaries come
//! from the bounded-memory [`QuantileSketch`], never from sorting the raw
//! samples (DESIGN.md §14).

use super::Opts;
use crate::output::render_csv;
use enprop_clustersim::EnpropError;
use enprop_obs::{parse_jsonl, ParsedEvent, ParsedKind, QuantileSketch, DEFAULT_SKETCH_ALPHA};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Knobs of `enprop obs query` (parsed from the command line in `main`).
#[derive(Debug, Clone, Default)]
pub struct ObsQueryOpts {
    /// JSONL trace file to query.
    pub trace: PathBuf,
    /// Track-label substring filter (e.g. `controller`, `g0`).
    pub track: Option<String>,
    /// Event-name substring filter (e.g. `win.`, `slo.burn`).
    pub name: Option<String>,
    /// Inclusive lower time bound, virtual seconds.
    pub from_s: Option<f64>,
    /// Inclusive upper time bound, virtual seconds.
    pub to_s: Option<f64>,
    /// Sketch the values of this exact metric name (instants + gauges)
    /// and print a percentile summary.
    pub quantiles: Option<String>,
    /// Cap on printed event lines (the summary always covers every match).
    pub limit: usize,
}

fn read_trace(path: &Path) -> Result<Vec<ParsedEvent>, EnpropError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        EnpropError::invalid_config(format!("cannot read {}: {e}", path.display()))
    })?;
    let events = parse_jsonl(&text);
    if events.is_empty() {
        return Err(EnpropError::invalid_config(format!(
            "{} holds no parseable trace events (expected the --trace-out FILE.jsonl format)",
            path.display()
        )));
    }
    Ok(events)
}

fn matches(q: &ObsQueryOpts, e: &ParsedEvent) -> bool {
    if let Some(t) = &q.track {
        if !e.track.contains(t.as_str()) {
            return false;
        }
    }
    if let Some(n) = &q.name {
        if !e.name.contains(n.as_str()) {
            return false;
        }
    }
    if q.from_s.is_some_and(|t| e.t_s < t) || q.to_s.is_some_and(|t| e.t_s > t) {
        return false;
    }
    true
}

/// Render one event's kind + payload for the human listing.
fn kind_cell(kind: &ParsedKind) -> String {
    match kind {
        ParsedKind::Begin => "span begin".into(),
        ParsedKind::End => "span end".into(),
        ParsedKind::Instant(v) => format!("instant {v}"),
        ParsedKind::Counter(d) => format!("counter +{d}"),
        ParsedKind::Gauge(v) => format!("gauge {v}"),
        ParsedKind::Power {
            cpu_act_w,
            cpu_stall_w,
            mem_w,
            net_w,
            idle_w,
        } => format!(
            "power {:.3} W",
            cpu_act_w + cpu_stall_w + mem_w + net_w + idle_w
        ),
    }
}

/// The numeric value a quantile summary sketches, if the event has one.
fn numeric_value(e: &ParsedEvent) -> Option<f64> {
    match e.kind {
        ParsedKind::Instant(v) | ParsedKind::Gauge(v) => v.is_finite().then_some(v),
        _ => None,
    }
}

/// `enprop obs query`: filter a JSONL trace by track / name / time range;
/// optionally sketch a metric's values into a percentile summary.
pub fn query_cmd(opts: &Opts, q: &ObsQueryOpts) -> Result<(), EnpropError> {
    let events = read_trace(&q.trace)?;
    let total = events.len();
    let hits: Vec<&ParsedEvent> = events.iter().filter(|e| matches(q, e)).collect();

    if opts.csv {
        let mut rows = vec![vec![
            "t_s".to_string(),
            "track".to_string(),
            "name".to_string(),
            "id".to_string(),
            "kind".to_string(),
        ]];
        for e in &hits {
            rows.push(vec![
                format!("{}", e.t_s),
                e.track.clone(),
                e.name.clone(),
                e.id.to_string(),
                kind_cell(&e.kind),
            ]);
        }
        print!("{}", render_csv(&rows));
    } else {
        for e in hits.iter().take(q.limit) {
            println!(
                "  {:>12.6} s  {:<16} {:<22} {}",
                e.t_s,
                e.track,
                e.name,
                kind_cell(&e.kind)
            );
        }
        if hits.len() > q.limit {
            println!("  … {} more matching events (raise --limit)", hits.len() - q.limit);
        }
        println!("{} of {total} events matched", hits.len());
    }

    if let Some(metric) = &q.quantiles {
        let mut sketch = QuantileSketch::new(DEFAULT_SKETCH_ALPHA);
        for e in &hits {
            if e.name == *metric {
                if let Some(v) = numeric_value(e) {
                    sketch.observe(v);
                }
            }
        }
        if sketch.count() == 0 {
            return Err(EnpropError::invalid_parameter(
                "--quantiles",
                format!("no instant/gauge values named {metric:?} in the filtered events"),
            ));
        }
        let qs = [0.50, 0.90, 0.95, 0.99, 0.999];
        if opts.csv {
            let mut rows = vec![vec![
                "metric".to_string(),
                "count".to_string(),
                "min".to_string(),
                "mean".to_string(),
                "max".to_string(),
                "p50".to_string(),
                "p90".to_string(),
                "p95".to_string(),
                "p99".to_string(),
                "p999".to_string(),
            ]];
            let mut row = vec![
                metric.clone(),
                sketch.count().to_string(),
                format!("{}", sketch.min().unwrap_or(f64::NAN)),
                format!("{}", sketch.mean()),
                format!("{}", sketch.max().unwrap_or(f64::NAN)),
            ];
            for &p in &qs {
                row.push(format!("{}", sketch.quantile(p).unwrap_or(f64::NAN)));
            }
            rows.push(row);
            print!("{}", render_csv(&rows));
        } else {
            println!(
                "\n{metric}: {} samples, min {:.6}, mean {:.6}, max {:.6}",
                sketch.count(),
                sketch.min().unwrap_or(f64::NAN),
                sketch.mean(),
                sketch.max().unwrap_or(f64::NAN)
            );
            for &p in &qs {
                println!(
                    "  p{:<5} {:.6}",
                    p * 100.0,
                    sketch.quantile(p).unwrap_or(f64::NAN)
                );
            }
            println!(
                "  (sketch quantiles, ±{:.0}% relative error)",
                DEFAULT_SKETCH_ALPHA * 100.0
            );
        }
    }
    Ok(())
}

/// Cluster + per-group metrics of one reconstructed window.
#[derive(Default)]
struct WindowRow {
    cluster: BTreeMap<String, f64>,
    groups: BTreeMap<u16, BTreeMap<String, f64>>,
}

/// `enprop obs report`: rebuild the serving plane's per-window table from
/// the `win.*` gauges in a recorded JSONL trace (one row per window close,
/// with per-group energy / J/request / EP sub-rows).
pub fn report_cmd(opts: &Opts, trace: &Path) -> Result<(), EnpropError> {
    let events = read_trace(trace)?;
    // Window closes emit every gauge at the same end_s; key rows on the
    // time's bit pattern (all end times are non-negative, so bit order ==
    // numeric order).
    let mut rows: BTreeMap<u64, WindowRow> = BTreeMap::new();
    for e in &events {
        let ParsedKind::Gauge(v) = e.kind else {
            continue;
        };
        let Some(metric) = e.name.strip_prefix("win.") else {
            continue;
        };
        let row = rows.entry(e.t_s.to_bits()).or_default();
        if let Some(g) = metric.strip_prefix("group.") {
            let Some(gid) = e
                .track
                .strip_prefix("group g")
                .and_then(|s| s.parse::<u16>().ok())
            else {
                continue;
            };
            row.groups.entry(gid).or_default().insert(g.to_string(), v);
        } else if e.track == "controller" {
            row.cluster.insert(metric.to_string(), v);
        }
    }
    if rows.is_empty() {
        return Err(EnpropError::invalid_config(format!(
            "{} holds no win.* gauges — record one with `enprop serve|replay --trace-out FILE.jsonl` \
             (the plane is off when obs_window_s = 0)",
            trace.display()
        )));
    }

    let cell = |m: &BTreeMap<String, f64>, k: &str, prec: usize| -> String {
        m.get(k)
            .map_or_else(|| "-".to_string(), |v| format!("{v:.prec$}"))
    };
    let mut table = vec![vec![
        "window".to_string(),
        "t_end_s".to_string(),
        "scope".to_string(),
        "req_per_s".to_string(),
        "p50_s".to_string(),
        "p99_s".to_string(),
        "p999_s".to_string(),
        "power_w".to_string(),
        "energy_j".to_string(),
        "j_per_req".to_string(),
        "ep".to_string(),
        "burn_fast".to_string(),
        "burn_slow".to_string(),
    ]];
    for (i, (bits, row)) in rows.iter().enumerate() {
        let t_end = f64::from_bits(*bits);
        let c = &row.cluster;
        table.push(vec![
            i.to_string(),
            format!("{t_end:.1}"),
            "cluster".to_string(),
            cell(c, "req_per_s", 1),
            cell(c, "p50_s", 4),
            cell(c, "p99_s", 4),
            cell(c, "p999_s", 4),
            cell(c, "power_w", 1),
            String::new(),
            cell(c, "j_per_req", 4),
            cell(c, "ep", 3),
            cell(c, "burn_fast", 2),
            cell(c, "burn_slow", 2),
        ]);
        for (gid, gm) in &row.groups {
            table.push(vec![
                i.to_string(),
                format!("{t_end:.1}"),
                format!("g{gid}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                cell(gm, "energy_j", 1),
                cell(gm, "j_per_req", 4),
                cell(gm, "ep", 3),
                String::new(),
                String::new(),
            ]);
        }
    }
    if opts.csv {
        print!("{}", render_csv(&table));
    } else {
        println!(
            "Serving plane report: {} windows from {}\n",
            rows.len(),
            trace.display()
        );
        print!("{}", crate::output::render_table(&table));
        println!(
            "\n(p50/p99/p999 are sketch quantiles, ±{:.0}% relative error; \
             ep is the per-window energy-proportionality index)",
            DEFAULT_SKETCH_ALPHA * 100.0
        );
    }
    Ok(())
}
