//! Terminal output helpers: aligned tables, CSV, and ASCII line plots.

/// Render rows as an aligned text table. The first row is the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            if i + 1 < row.len() {
                out.push_str(&" ".repeat(pad + 2));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Render rows as CSV (no quoting needed for our numeric/label content;
/// commas in cells are replaced by semicolons defensively).
pub fn render_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|c| c.replace(',', ";"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// One plot series: a label and `(x, y)` points.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, sorted by x.
    pub points: Vec<(f64, f64)>,
}

/// Minimal ASCII line plot: multiple series on a shared canvas, one glyph
/// per series, optional log-scale y axis (the paper's Figs. 11–12 use one).
pub fn ascii_plot(
    series: &[Series],
    width: usize,
    height: usize,
    log_y: bool,
    x_label: &str,
    y_label: &str,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let pts = |y: f64| if log_y { y.max(1e-300).log10() } else { y };
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(pts(y));
            ymax = ymax.max(pts(y));
        }
    }
    if !(xmin.is_finite() && ymin.is_finite()) {
        return String::from("(no data)\n");
    }
    if (xmax - xmin).abs() < 1e-300 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-300 {
        ymax = ymin + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((pts(y) - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = g;
        }
    }

    let mut out = String::new();
    let y_hi = if log_y {
        format!("{:.3}", 10f64.powf(ymax))
    } else {
        format!("{ymax:.3}")
    };
    let y_lo = if log_y {
        format!("{:.3}", 10f64.powf(ymin))
    } else {
        format!("{ymin:.3}")
    };
    out.push_str(&format!("{y_label}{}\n", if log_y { " [log scale]" } else { "" }));
    for (i, row) in canvas.iter().enumerate() {
        let margin = if i == 0 {
            format!("{y_hi:>10} |")
        } else if i == height - 1 {
            format!("{y_lo:>10} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&margin);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}{:<12.3}{:>width$.3}  ({x_label})\n",
        "",
        xmin,
        xmax,
        width = width.saturating_sub(12)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "      {} {}\n",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

/// Format a float with engineering-style precision suited to tables.
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns_and_underlines_header() {
        let rows = vec![
            vec!["name".to_string(), "value".to_string()],
            vec!["alpha".to_string(), "1".to_string()],
            vec!["b".to_string(), "22".to_string()],
        ];
        let out = render_table(&rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" and "1" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn csv_joins_and_sanitizes() {
        let rows = vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        assert_eq!(render_csv(&rows), "a,b;c\n1,2\n");
    }

    #[test]
    fn plot_contains_series_glyphs_and_legend() {
        let s = vec![
            Series { label: "one".into(), points: vec![(0.0, 0.0), (1.0, 1.0)] },
            Series { label: "two".into(), points: vec![(0.0, 1.0), (1.0, 0.0)] },
        ];
        let out = ascii_plot(&s, 40, 10, false, "x", "y");
        assert!(out.contains('*') && out.contains('o'));
        assert!(out.contains("one") && out.contains("two"));
        assert!(out.contains("(x)"));
    }

    #[test]
    fn plot_handles_empty_and_degenerate_input() {
        assert_eq!(ascii_plot(&[], 20, 5, false, "x", "y"), "(no data)\n");
        let s = vec![Series { label: "flat".into(), points: vec![(1.0, 5.0), (1.0, 5.0)] }];
        let out = ascii_plot(&s, 20, 5, false, "x", "y");
        assert!(out.contains('*'));
    }

    #[test]
    fn log_plot_labels_decades() {
        let s = vec![Series { label: "l".into(), points: vec![(0.0, 1.0), (1.0, 1000.0)] }];
        let out = ascii_plot(&s, 20, 5, true, "x", "y");
        assert!(out.contains("log scale"));
        assert!(out.contains("1000.000"));
    }

    #[test]
    fn fmt_sig_picks_sane_precision() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(6_048_057.0), "6.048e6");
        assert_eq!(fmt_sig(968.0), "968.0");
        assert_eq!(fmt_sig(1.955), "1.955");
        assert_eq!(fmt_sig(0.7), "0.7000");
        assert_eq!(fmt_sig(0.0001), "1.000e-4");
    }
}
