#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `enprop` — regenerate every table and figure of the CLUSTER'16 paper
//! *"On Energy Proportionality and Time-Energy Performance of
//! Heterogeneous Clusters"* from the reproduction library.

mod commands;
mod diag;
mod output;

use commands::{
    characterize_cmd, explore_cmds, faults_cmd, figures, obs_cmd, serve_cmd, strategies, tables,
    ObsCtx, Opts,
};
use enprop_clustersim::EnpropError;
use enprop_obs::{
    append_bench_record, chrome_trace, jsonl, CommandTimer, MetricsSnapshot, SwitchRecorder,
};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
enprop — energy proportionality of heterogeneous clusters (CLUSTER'16 reproduction)

USAGE: enprop <COMMAND> [OPTIONS]

Experiment commands (one per paper artifact):
  table4        Cluster validation errors (model vs simulated testbed)
  table5        Node type specifications
  table6        Performance-to-power ratios per node type
  table7        Single-node energy proportionality metrics
  table8        Cluster-wide energy proportionality (1 kW budget)
  fig2          Metric-relationship diagram data
  pg            Proportionality-gap PG(u) table per system
  fig5          Single-node proportionality curves (EP, x264, blackscholes)
  fig6          Single-node PPR curves
  fig7          Cluster-wide proportionality of the budget mixes
  fig8          Cluster-wide PPR of the budget mixes
  fig9          Proportionality of Pareto configurations (EP)
  fig10         Proportionality of Pareto configurations (x264)
  fig11         p95 response time of heterogeneous mixes (EP)
  fig12         p95 response time of heterogeneous mixes (x264)
  all           Run every table and figure in order

Robustness commands:
  faults        Extension: fault injection with recovery  [--mtbf SECS]
                [--stall SECS] [--slowdown X] [--retries N]
                [--timeout-factor F] [--utilization U] [--jobs N]

Serving commands (online mode, DESIGN.md \u{a7}13 and \u{a7}16):
  serve         Extension: online serving under a virtual-time controller
                [--requests N] [--utilization U | --rate R] [--arrival
                poisson|diurnal] [--period S] [--ops-per-request OPS]
                [--slo-p95 S] [--slo-p999 S] [--power-cap W] [--mtbf S]
                [--stall S] [--slowdown X] [--repair S] [--max-inflight N]
                [--emit-arrivals FILE] [--live-report SECS]
                [--best-effort FRAC]
                Correlated failure domains: [--rack-mtbf S] [--pdu-mtbf S]
                [--emergency-mtbf S --emergency-cap W (10 s emergencies)]
                [--nodes-per-rack N (4)] [--racks-per-pdu N (2)]
                Checkpoint/resume: [--checkpoint-out FILE (written
                tmp+rename at every closed obs window)] [--resume-from
                FILE (same flags as the killed run)] [--kill-after-events
                N (simulated crash: exit 0, no report)]
  replay        Replay a JSONL arrival trace through the serving
                controller  --trace FILE  (same options as serve)
  chaos         Sweep randomized fault plans over serving runs, checking
                conservation and span balance  [--plans N] [--requests N]
                [--domains  (correlated rack/PDU/power-emergency plans
                with circuit breakers, instead of per-node plans)]

Observability commands (DESIGN.md \u{a7}14):
  obs query     Filter a recorded JSONL trace  --trace FILE  [--track T]
                [--name N] [--from S] [--to S] [--limit N]
                [--quantiles METRIC]  (percentiles from bounded-memory
                sketches, \u{b1}1% relative error)
  obs report    Per-window serving table (req/s, p50/p99/p999, W, J/req,
                EP index, burn rate; per node group)  --trace FILE
  obs power     Simulated power-meter trace  [--utilization X]
                (formerly top-level `enprop trace`)

Exploration commands:
  footnote4     Configuration-space size (paper's 36,380 example)
  dynamic       Extension: dynamic configuration-switching envelope
  ablation      Extension: quadratic power-curve ablation (Hsu & Poole)
  pareto        Energy-deadline Pareto frontier  [--a9 N] [--k10 N]
  space         DALEK-style space exploration over any node-type mix
                [--types a9:10,k10:10,pi4:16 (NAME:MAX_NODES list; names
                a9, k10, a15, xeon, pi4, opi5)] [--stream (dominance-
                pruned streaming evaluator, O(frontier) memory — required
                above 2M configs)] [--max-configs N (first N configs of
                enumeration order)] [--chunk N (streaming chunk size)]
  search        Extension: heuristic sweet-spot search  --deadline SECS
  export        Dump the evaluated configuration space as CSV  [--a9 N] [--k10 N]
  strategies    Extension: all energy strategies side by side
  sweet         Min-energy config under a deadline  --deadline SECS [--a9 N] [--k10 N]

Characterization commands:
  kernels       Run the real workload kernels on this host  [--scale X]
  power         Micro-benchmark power characterization of simulated nodes

Options:
  --workload W  Workload override (EP, memcached, x264, blackscholes, Julius, RSA-2048)
  --csv         Emit CSV instead of tables/ASCII plots
  --samples N   Simulation samples per measurement (default 5)
  --seed S      RNG seed (default 7)
  --a9 N        Max/count of A9 nodes for exploration commands (default 32)
  --k10 N       Max/count of K10 nodes for exploration commands (default 12)
  --deadline S  Deadline in seconds for `sweet`
  --scale X     Kernel size multiplier for `kernels` (default 0.2)
  --threads N   Worker threads for configuration-space evaluation
                (default: ENPROP_THREADS/RAYON_NUM_THREADS env, else all
                cores; results are bit-identical for any thread count)

Telemetry options (any command):
  --trace-out FILE    Write the sim-time trace: Chrome trace-event JSON
                      (open in Perfetto); a .jsonl suffix writes the raw
                      deterministic event stream instead
  --metrics-out FILE  Write an aggregate metrics snapshot: JSON, or flat
                      CSV with a .csv suffix
  --profile           Append this command's wall-clock time to BENCH_obs.json
  -v, --verbose       Informational diagnostics on stderr
  --quiet             Suppress explanatory notes (bare data only)

Fault options (for `faults`):
  --mtbf S          Per-node MTBF in seconds (default 4x the fault-free job time)
  --stall S         Also inject transient stalls of S seconds
  --slowdown X      Also inject stragglers running X times slower (X > 1)
  --retries N       Retry budget after the first attempt (default 3)
  --timeout-factor F  Attempt timeout as a multiple of the job time (default 3)
  --utilization U   Dispatcher load for the queue comparison (default 0.7)
  --jobs N          Jobs sampled under the plan (default 200)

Exit codes: 0 ok, 2 invalid configuration or parameter, 3 missing profile
or empty cluster, 4 cluster dead / retry budget exhausted.
(The companion `enprop-lint` binary uses 0 clean, 1 findings, 2 usage.)
";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse `--flag VALUE` as a number: `Ok(None)` when the flag is absent,
/// a typed [`EnpropError::InvalidParameter`] (exit code 2) when the value
/// is missing or malformed — never a panic.
fn parse_num<T: std::str::FromStr>(
    args: &[String],
    name: &'static str,
) -> Result<Option<T>, EnpropError> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(EnpropError::invalid_parameter(
            name,
            "flag given without a value",
        ));
    };
    raw.parse().map(Some).map_err(|_| {
        EnpropError::invalid_parameter(name, format!("expected a number, got {raw:?}"))
    })
}

/// [`parse_num`] for flags a command cannot run without.
fn require_num<T: std::str::FromStr>(
    args: &[String],
    name: &'static str,
    why: &'static str,
) -> Result<T, EnpropError> {
    parse_num(args, name)?.ok_or_else(|| EnpropError::invalid_parameter(name, why))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), EnpropError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };

    // Verbosity first, so every later diagnostic honors it.
    let quiet = args.iter().any(|a| a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    diag::set_level(if quiet {
        diag::QUIET
    } else if verbose {
        diag::VERBOSE
    } else {
        diag::NORMAL
    });

    let mut opts = Opts {
        csv: args.iter().any(|a| a == "--csv"),
        ..Opts::default()
    };
    if let Some(n) = parse_num(&args, "--samples")? {
        opts.samples = n;
    }
    if let Some(n) = parse_num(&args, "--seed")? {
        opts.seed = n;
    }
    opts.workload = parse_flag(&args, "--workload");
    let a9: u32 = parse_num(&args, "--a9")?.unwrap_or(32);
    let k10: u32 = parse_num(&args, "--k10")?.unwrap_or(12);
    let scale: f64 = parse_num(&args, "--scale")?.unwrap_or(0.2);
    if let Some(n) = parse_num::<usize>(&args, "--threads")? {
        enprop_explore::set_eval_threads(n);
    }
    diag::info(format!(
        "evaluation pool: {} worker thread(s)",
        enprop_explore::eval_threads()
    ));

    // Telemetry: recording turns on when any export is requested.
    let trace_out = parse_flag(&args, "--trace-out").map(PathBuf::from);
    let metrics_out = parse_flag(&args, "--metrics-out").map(PathBuf::from);
    let mut ctx = ObsCtx {
        rec: if trace_out.is_some() || metrics_out.is_some() {
            SwitchRecorder::on()
        } else {
            SwitchRecorder::Off
        },
        trace_out,
        metrics_out,
    };
    let timer = args
        .iter()
        .any(|a| a == "--profile")
        .then(|| CommandTimer::start(cmd.clone(), opts.seed));

    match cmd.as_str() {
        "table4" => tables::table4_cmd(&opts, &mut ctx),
        "table5" => tables::table5_cmd(&opts),
        "table6" => tables::table6_cmd(&opts),
        "table7" => tables::table7_cmd(&opts),
        "table8" => tables::table8_cmd(&opts),
        "fig2" => figures::fig2_cmd(&opts),
        "pg" => figures::pg_cmd(&opts),
        "fig5" => figures::fig5_cmd(&opts),
        "fig6" => figures::fig6_cmd(&opts),
        "fig7" => figures::fig7_cmd(&opts),
        "fig8" => figures::fig8_cmd(&opts),
        "fig9" => figures::fig9_cmd(&opts, "EP"),
        "fig10" => figures::fig9_cmd(&opts, "x264"),
        "fig11" => figures::fig11_cmd(&opts, "EP", &mut ctx),
        "fig12" => figures::fig11_cmd(&opts, "x264", &mut ctx),
        "footnote4" => explore_cmds::footnote4_cmd(&opts),
        "dynamic" => figures::dynamic_cmd(&opts),
        "ablation" => figures::ablation_cmd(&opts),
        "pareto" => explore_cmds::pareto_cmd(&opts, a9, k10, &mut ctx),
        "space" => {
            let so = explore_cmds::SpaceOpts {
                types: parse_flag(&args, "--types").unwrap_or_else(|| "a9:10,k10:10".into()),
                stream: args.iter().any(|a| a == "--stream"),
                max_configs: parse_num(&args, "--max-configs")?,
                chunk: parse_num(&args, "--chunk")?,
            };
            explore_cmds::space_cmd(&opts, &so, &mut ctx)?;
        }
        "search" => {
            let deadline: f64 = require_num(&args, "--deadline", "search requires --deadline SECS")?;
            explore_cmds::search_cmd(&opts, a9, k10, deadline);
        }
        "strategies" => strategies::strategies_cmd(&opts),
        "export" => explore_cmds::export_cmd(&opts, a9, k10, &mut ctx),
        // `trace` is the hidden legacy spelling of `obs power`.
        "trace" => {
            let u: f64 = parse_num(&args, "--utilization")?.unwrap_or(0.6);
            explore_cmds::trace_cmd(&opts, u, &mut ctx);
        }
        "obs" => {
            let sub = args.get(1).cloned().unwrap_or_default();
            match sub.as_str() {
                "query" => {
                    let q = obs_cmd::ObsQueryOpts {
                        trace: parse_flag(&args, "--trace").map(PathBuf::from).ok_or_else(
                            || {
                                EnpropError::invalid_parameter(
                                    "--trace",
                                    "obs query requires --trace FILE (a --trace-out .jsonl export)",
                                )
                            },
                        )?,
                        track: parse_flag(&args, "--track"),
                        name: parse_flag(&args, "--name"),
                        from_s: parse_num(&args, "--from")?,
                        to_s: parse_num(&args, "--to")?,
                        quantiles: parse_flag(&args, "--quantiles"),
                        limit: parse_num(&args, "--limit")?.unwrap_or(50),
                    };
                    obs_cmd::query_cmd(&opts, &q)?;
                }
                "report" => {
                    let trace = parse_flag(&args, "--trace").map(PathBuf::from).ok_or_else(
                        || {
                            EnpropError::invalid_parameter(
                                "--trace",
                                "obs report requires --trace FILE (a --trace-out .jsonl export)",
                            )
                        },
                    )?;
                    obs_cmd::report_cmd(&opts, &trace)?;
                }
                "power" => {
                    let u: f64 = parse_num(&args, "--utilization")?.unwrap_or(0.6);
                    explore_cmds::trace_cmd(&opts, u, &mut ctx);
                }
                other => {
                    return Err(EnpropError::invalid_parameter(
                        "obs",
                        format!("expected query, report or power, got {other:?}"),
                    ));
                }
            }
        }
        "sweet" => {
            let deadline: f64 = require_num(&args, "--deadline", "sweet requires --deadline SECS")?;
            explore_cmds::sweet_cmd(&opts, a9, k10, deadline, &mut ctx);
        }
        "kernels" => characterize_cmd::kernels_cmd(&opts, scale),
        "power" => characterize_cmd::power_cmd(&opts),
        "faults" => {
            let mut fo = faults_cmd::FaultOpts {
                mtbf_s: parse_num(&args, "--mtbf")?,
                stall_s: parse_num(&args, "--stall")?,
                slowdown: parse_num(&args, "--slowdown")?,
                ..faults_cmd::FaultOpts::default()
            };
            if let Some(n) = parse_num(&args, "--retries")? {
                fo.retries = n;
            }
            if let Some(f) = parse_num(&args, "--timeout-factor")? {
                fo.timeout_factor = f;
            }
            if let Some(u) = parse_num(&args, "--utilization")? {
                fo.utilization = u;
            }
            if let Some(n) = parse_num(&args, "--jobs")? {
                fo.jobs = n;
            }
            faults_cmd::faults_cmd(&opts, &fo, a9, k10, &mut ctx)?;
        }
        "serve" | "replay" | "chaos" => {
            let mut so = serve_cmd::ServeOpts {
                rate: parse_num(&args, "--rate")?,
                ops_per_request: parse_num(&args, "--ops-per-request")?,
                power_cap_w: parse_num(&args, "--power-cap")?,
                mtbf_s: parse_num(&args, "--mtbf")?,
                stall_s: parse_num(&args, "--stall")?,
                slowdown: parse_num(&args, "--slowdown")?,
                emit_arrivals: parse_flag(&args, "--emit-arrivals").map(PathBuf::from),
                ..serve_cmd::ServeOpts::default()
            };
            if let Some(n) = parse_num(&args, "--requests")? {
                so.requests = n;
            }
            if let Some(u) = parse_num(&args, "--utilization")? {
                so.utilization = u;
            }
            if let Some(a) = parse_flag(&args, "--arrival") {
                so.arrival = a;
            }
            if let Some(p) = parse_num(&args, "--period")? {
                so.period_s = p;
            }
            if let Some(s) = parse_num(&args, "--slo-p95")? {
                so.slo_p95_s = s;
            }
            so.slo_p999_s = parse_num(&args, "--slo-p999")?;
            so.live_report_s = parse_num(&args, "--live-report")?;
            so.checkpoint_out = parse_flag(&args, "--checkpoint-out").map(PathBuf::from);
            so.resume_from = parse_flag(&args, "--resume-from").map(PathBuf::from);
            so.kill_after_events = parse_num(&args, "--kill-after-events")?;
            so.best_effort = parse_num(&args, "--best-effort")?;
            so.rack_mtbf_s = parse_num(&args, "--rack-mtbf")?;
            so.pdu_mtbf_s = parse_num(&args, "--pdu-mtbf")?;
            so.emergency_mtbf_s = parse_num(&args, "--emergency-mtbf")?;
            so.emergency_cap_w = parse_num(&args, "--emergency-cap")?;
            if let Some(n) = parse_num(&args, "--nodes-per-rack")? {
                so.nodes_per_rack = n;
            }
            if let Some(n) = parse_num(&args, "--racks-per-pdu")? {
                so.racks_per_pdu = n;
            }
            so.domains = args.iter().any(|a| a == "--domains");
            if let Some(r) = parse_num(&args, "--repair")? {
                so.repair_s = r;
            }
            if let Some(m) = parse_num(&args, "--max-inflight")? {
                so.max_inflight = m;
            }
            if let Some(p) = parse_num(&args, "--plans")? {
                so.plans = p;
            }
            // Serving defaults to a small always-on cluster, not the
            // exploration bound of 32+12 nodes.
            let a9_serve: u32 = parse_num(&args, "--a9")?.unwrap_or(6);
            let k10_serve: u32 = parse_num(&args, "--k10")?.unwrap_or(2);
            match cmd.as_str() {
                "serve" => serve_cmd::serve_cmd(&opts, &so, a9_serve, k10_serve, &mut ctx)?,
                "replay" => {
                    let trace = parse_flag(&args, "--trace").map(PathBuf::from).ok_or_else(
                        || EnpropError::invalid_parameter("--trace", "replay requires --trace FILE"),
                    )?;
                    serve_cmd::replay_cmd(&opts, &so, &trace, a9_serve, k10_serve, &mut ctx)?;
                }
                _ => serve_cmd::chaos_cmd(&opts, &so, a9_serve, k10_serve)?,
            }
        }
        "all" => {
            tables::table4_cmd(&opts, &mut ctx);
            println!();
            tables::table5_cmd(&opts);
            println!();
            tables::table6_cmd(&opts);
            println!();
            tables::table7_cmd(&opts);
            println!();
            tables::table8_cmd(&opts);
            println!();
            figures::fig2_cmd(&opts);
            println!();
            figures::fig5_cmd(&opts);
            figures::fig6_cmd(&opts);
            figures::fig7_cmd(&opts);
            println!();
            figures::fig8_cmd(&opts);
            println!();
            figures::fig9_cmd(&opts, "EP");
            println!();
            figures::fig9_cmd(&opts, "x264");
            println!();
            figures::fig11_cmd(&opts, "EP", &mut ctx);
            println!();
            figures::fig11_cmd(&opts, "x264", &mut ctx);
            println!();
            explore_cmds::footnote4_cmd(&opts);
            println!();
            figures::dynamic_cmd(&opts);
            println!();
            figures::ablation_cmd(&opts);
            println!();
            strategies::strategies_cmd(&opts);
        }
        "--help" | "-h" | "help" => print!("{USAGE}"),
        other => {
            eprintln!("unknown command: {other}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }

    write_outputs(&ctx)?;
    if let Some(t) = timer {
        let record = t.finish();
        let path = Path::new("BENCH_obs.json");
        append_bench_record(path, &record).map_err(|e| {
            EnpropError::invalid_config(format!("cannot append {}: {e}", path.display()))
        })?;
        diag::info(format!(
            "profiled {}: {:.1} ms (appended to {})",
            record.cmd,
            record.wall_ms,
            path.display()
        ));
    }
    Ok(())
}

/// Write the requested telemetry exports. File-format selection is by
/// suffix: `--trace-out x.jsonl` writes the raw deterministic event
/// stream (the golden-test format), anything else a Chrome trace-event
/// document; `--metrics-out x.csv` writes flat CSV, anything else JSON.
fn write_outputs(ctx: &ObsCtx) -> Result<(), EnpropError> {
    let Some(mem) = ctx.rec.as_memory() else {
        return Ok(());
    };
    let write = |path: &Path, body: String| -> Result<(), EnpropError> {
        std::fs::write(path, body).map_err(|e| {
            EnpropError::invalid_config(format!("cannot write {}: {e}", path.display()))
        })
    };
    if let Some(path) = &ctx.trace_out {
        let body = if path.extension().is_some_and(|x| x == "jsonl") {
            jsonl(mem.events())
        } else {
            chrome_trace(mem.events())
        };
        write(path, body)?;
        diag::info(format!(
            "wrote {} trace events to {}",
            mem.len(),
            path.display()
        ));
    }
    if let Some(path) = &ctx.metrics_out {
        let snap = MetricsSnapshot::from_recorder(mem);
        let body = if path.extension().is_some_and(|x| x == "csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        write(path, body)?;
        diag::info(format!("wrote metrics snapshot to {}", path.display()));
    }
    Ok(())
}
