//! CLI diagnostics with one global verbosity level.
//!
//! Three channels, so experiment output stays machine-consumable:
//!
//! * [`error`] — hard failures, stderr, always printed;
//! * [`info`] — progress/telemetry diagnostics, stderr, only under
//!   `-v`/`--verbose` (the default stderr is clean);
//! * [`note`] — explanatory paragraphs appended to experiment output,
//!   stdout, suppressed by `--quiet` (so `--quiet` yields the bare
//!   table/figure data and nothing else).

use std::sync::atomic::{AtomicU8, Ordering};

/// `--quiet`: only hard errors and the experiment data itself.
pub const QUIET: u8 = 0;
/// Default: experiment data plus explanatory notes.
pub const NORMAL: u8 = 1;
/// `-v`/`--verbose`: additionally, informational diagnostics on stderr.
pub const VERBOSE: u8 = 2;

static LEVEL: AtomicU8 = AtomicU8::new(NORMAL);

/// Set the global verbosity (parsed once from the command line).
pub fn set_level(level: u8) {
    LEVEL.store(level, Ordering::Relaxed);
}

/// The current verbosity level.
pub fn level() -> u8 {
    LEVEL.load(Ordering::Relaxed)
}

/// A hard error: stderr, printed at every verbosity level.
pub fn error(msg: impl AsRef<str>) {
    eprintln!("{}", msg.as_ref());
}

/// An informational diagnostic: stderr, printed only under `-v`.
pub fn info(msg: impl AsRef<str>) {
    if level() >= VERBOSE {
        eprintln!("{}", msg.as_ref());
    }
}

/// An explanatory note trailing experiment output: stdout, suppressed by
/// `--quiet`.
pub fn note(msg: impl AsRef<str>) {
    if level() >= NORMAL {
        println!("{}", msg.as_ref());
    }
}
