//! End-to-end tests of the `enprop` binary: run real subcommands and
//! check the regenerated numbers in the output.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_enprop"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table7_prints_paper_numbers() {
    let (stdout, _, ok) = run(&["table7"]);
    assert!(ok);
    // The EP row of Table 7, exactly as the paper prints the DPRs.
    assert!(stdout.contains("25.97"), "{stdout}");
    assert!(stdout.contains("34.57"));
    assert!(stdout.contains("41.19"), "RSA K10 DPR missing");
}

#[test]
fn table7_csv_is_machine_readable() {
    let (stdout, _, ok) = run(&["table7", "--csv"]);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().filter(|l| l.contains(',')).collect();
    // Header + six workload rows.
    assert_eq!(lines.len(), 7, "{stdout}");
    assert!(lines[1].starts_with("EP,25.97,34.57"));
}

#[test]
fn footnote4_reports_36380() {
    let (stdout, _, ok) = run(&["footnote4"]);
    assert!(ok);
    assert!(stdout.contains("36380") || stdout.contains("36,380"), "{stdout}");
}

#[test]
fn fig9_draws_all_five_mixes() {
    let (stdout, _, ok) = run(&["fig9"]);
    assert!(ok);
    for label in ["32 A9 : 12 K10", "25 A9 : 10 K10", "25 A9 : 8 K10", "25 A9 : 7 K10", "25 A9 : 5 K10"] {
        assert!(stdout.contains(label), "missing {label}");
    }
    assert!(stdout.contains("Ideal"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_workload_fails_cleanly() {
    let (_, stderr, ok) = run(&["fig5", "--workload", "doom"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
}

#[test]
fn help_lists_every_paper_artifact() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for cmd in [
        "table4", "table5", "table6", "table7", "table8", "fig2", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig11", "fig12", "footnote4", "pareto", "sweet", "search",
        "dynamic", "ablation", "strategies", "kernels", "power", "trace", "export", "pg",
    ] {
        assert!(stdout.contains(cmd), "usage missing {cmd}");
    }
}

#[test]
fn export_emits_the_full_space() {
    let (stdout, _, ok) = run(&["export", "--a9", "1", "--k10", "1"]);
    assert!(ok);
    // 1·4·5 = 20 A9 tuples, 1·6·3 = 18 K10 tuples → 21·19 − 1 = 398 rows.
    let data_rows = stdout.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(data_rows, 398, "{stdout}");
    assert!(stdout.lines().next().unwrap().starts_with("workload,a9,k10"));
    // The frontier flag must be present on at least one row.
    assert!(stdout.contains(",true"));
}
