#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! End-to-end tests of the `enprop` binary: run real subcommands and
//! check the regenerated numbers in the output.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_enprop"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table7_prints_paper_numbers() {
    let (stdout, _, ok) = run(&["table7"]);
    assert!(ok);
    // The EP row of Table 7, exactly as the paper prints the DPRs.
    assert!(stdout.contains("25.97"), "{stdout}");
    assert!(stdout.contains("34.57"));
    assert!(stdout.contains("41.19"), "RSA K10 DPR missing");
}

#[test]
fn table7_csv_is_machine_readable() {
    let (stdout, _, ok) = run(&["table7", "--csv"]);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().filter(|l| l.contains(',')).collect();
    // Header + six workload rows.
    assert_eq!(lines.len(), 7, "{stdout}");
    assert!(lines[1].starts_with("EP,25.97,34.57"));
}

#[test]
fn footnote4_reports_36380() {
    let (stdout, _, ok) = run(&["footnote4"]);
    assert!(ok);
    assert!(stdout.contains("36380") || stdout.contains("36,380"), "{stdout}");
}

#[test]
fn fig9_draws_all_five_mixes() {
    let (stdout, _, ok) = run(&["fig9"]);
    assert!(ok);
    for label in ["32 A9 : 12 K10", "25 A9 : 10 K10", "25 A9 : 8 K10", "25 A9 : 7 K10", "25 A9 : 5 K10"] {
        assert!(stdout.contains(label), "missing {label}");
    }
    assert!(stdout.contains("Ideal"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_workload_fails_cleanly() {
    let (_, stderr, ok) = run(&["fig5", "--workload", "doom"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
}

#[test]
fn help_lists_every_paper_artifact() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for cmd in [
        "table4", "table5", "table6", "table7", "table8", "fig2", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig11", "fig12", "footnote4", "pareto", "sweet", "search",
        "dynamic", "ablation", "strategies", "kernels", "power", "trace", "export", "pg",
    ] {
        assert!(stdout.contains(cmd), "usage missing {cmd}");
    }
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("enprop-cli-smoke");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{}", std::process::id(), name))
}

#[test]
fn help_lists_telemetry_flags() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for flag in ["--trace-out", "--metrics-out", "--profile", "--verbose", "--quiet"] {
        assert!(stdout.contains(flag), "usage missing {flag}");
    }
}

#[test]
fn telemetry_flags_leave_stdout_untouched() {
    let trace = tmp_path("t4-trace.json");
    let metrics = tmp_path("t4-metrics.json");
    let (plain, _, ok) = run(&["table4", "--samples", "2"]);
    assert!(ok);
    let (traced, _, ok) = run(&[
        "table4",
        "--samples",
        "2",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok);
    assert_eq!(plain, traced, "exports must not perturb the experiment output");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn trace_out_writes_a_chrome_trace_and_metrics_carry_the_schema() {
    let trace = tmp_path("fig11-trace.json");
    let metrics = tmp_path("fig11-metrics.json");
    let (_, _, ok) = run(&[
        "fig11",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok);
    let t = std::fs::read_to_string(&trace).expect("trace written");
    assert!(t.starts_with("{\"traceEvents\":["), "{t}");
    assert!(t.contains("\"ph\":\"X\""), "no complete span events");
    assert!(t.contains("dispatch.queue_depth"), "no queue-depth series");
    assert!(t.contains("node.dvfs_transitions"), "no DVFS series");
    let m = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(m.contains("enprop-obs-metrics-v1"), "{m}");
    assert!(m.contains("\"dispatch.retries\""), "no retry counter");
    assert!(m.contains("\"job\""), "no job span stats");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn golden_jsonl_trace_is_byte_identical_across_runs() {
    let a = tmp_path("golden-a.jsonl");
    let b = tmp_path("golden-b.jsonl");
    for p in [&a, &b] {
        let (_, _, ok) = run(&["table4", "--samples", "2", "--trace-out", p.to_str().unwrap()]);
        assert!(ok);
    }
    let body_a = std::fs::read(&a).expect("first run written");
    let body_b = std::fs::read(&b).expect("second run written");
    assert!(!body_a.is_empty());
    assert_eq!(body_a, body_b, "same seed + command must trace identically");
    let first = String::from_utf8(body_a).unwrap();
    assert!(first.lines().next().unwrap().starts_with("{\"t\":"), "{first}");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn quiet_strips_notes_and_keeps_the_data() {
    let (plain, _, ok) = run(&["table7"]);
    assert!(ok);
    let (quiet, _, ok) = run(&["table7", "--quiet"]);
    assert!(ok);
    assert!(plain.contains("Note ("));
    assert!(!quiet.contains("Note ("));
    assert!(quiet.contains("25.97"), "data rows must survive --quiet");
}

#[test]
fn profile_appends_a_bench_record() {
    let dir = std::env::temp_dir().join(format!("enprop-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_enprop"))
        .args(["table5", "--profile"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let body = std::fs::read_to_string(dir.join("BENCH_obs.json")).expect("bench file");
    assert!(body.lines().next().unwrap().contains("\"cmd\":\"table5\""), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn export_emits_the_full_space() {
    let (stdout, _, ok) = run(&["export", "--a9", "1", "--k10", "1"]);
    assert!(ok);
    // 1·4·5 = 20 A9 tuples, 1·6·3 = 18 K10 tuples → 21·19 − 1 = 398 rows.
    let data_rows = stdout.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(data_rows, 398, "{stdout}");
    assert!(stdout.lines().next().unwrap().starts_with("workload,a9,k10"));
    // The frontier flag must be present on at least one row.
    assert!(stdout.contains(",true"));
}
