#![allow(clippy::unwrap_used)] // test code: panicking on malformed fixtures is the desired failure mode

//! Property-based tests for simulator invariants.

use enprop_nodesim::{Frictions, NodeSim, NodeSpec, NodeWork};
use proptest::prelude::*;

fn work_strategy() -> impl Strategy<Value = NodeWork> {
    (
        1.0e8f64..1.0e10,
        0.0f64..1.0e9,
        0.0f64..1.0e9,
        0.0f64..1.0e7,
    )
        .prop_map(|(act, memc, memb, io)| NodeWork {
            act_cycles: act,
            mem_cycles: memc,
            mem_bytes: memb,
            io_bytes: io,
            ..NodeWork::default()
        })
}

proptest! {
    /// Energy is exactly the integral of average power over the duration.
    #[test]
    fn energy_is_power_integral(work in work_strategy(), seed in 0u64..100) {
        let sim = NodeSim::new(NodeSpec::cortex_a9());
        let run = sim.run(&work, 4, 1.4e9, &Frictions::default(), seed);
        prop_assert!((run.avg_power_w * run.duration - run.energy.total()).abs()
            <= 1e-9 * run.energy.total().max(1.0));
    }

    /// More work never takes less time or energy (friction-free).
    #[test]
    fn monotone_in_work(work in work_strategy(), k in 1.05f64..4.0) {
        let sim = NodeSim::new(NodeSpec::opteron_k10());
        let small = sim.run(&work, 6, 2.1e9, &Frictions::default(), 0);
        let big = sim.run(&work.scaled(k), 6, 2.1e9, &Frictions::default(), 0);
        prop_assert!(big.duration >= small.duration - 1e-12);
        prop_assert!(big.energy.total() >= small.energy.total() - 1e-9);
    }

    /// Lower frequency never shortens a run (friction-free).
    #[test]
    fn slower_clock_is_never_faster(work in work_strategy()) {
        let spec = NodeSpec::cortex_a9();
        let sim = NodeSim::new(spec.clone());
        let mut prev = f64::INFINITY;
        for &f in spec.frequencies.iter() {
            // ascending frequency → non-increasing duration
            let run = sim.run(&work, 4, f, &Frictions::default(), 0);
            prop_assert!(run.duration <= prev * (1.0 + 1e-12),
                "duration grew when frequency rose: f={f}");
            prev = run.duration;
        }
    }

    /// Friction effects never make a run faster than the ideal model.
    #[test]
    fn frictions_never_speed_up(
        work in work_strategy(),
        ov in 0.5f64..1.0,
        imb in 0.0f64..0.2,
        eff in 0.5f64..1.0,
    ) {
        let sim = NodeSim::new(NodeSpec::cortex_a9());
        let ideal = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        let fr = Frictions {
            ooo_overlap: ov,
            sched_imbalance: imb,
            io_efficiency: eff,
            ..Frictions::default()
        };
        let rough = sim.run(&work, 4, 1.4e9, &fr, 0);
        prop_assert!(rough.duration >= ideal.duration - 1e-12);
    }

    /// Every energy component is non-negative and the breakdown is
    /// internally consistent under any jitter.
    #[test]
    fn energy_components_non_negative(
        work in work_strategy(),
        jit in 0.0f64..0.1,
        seed in 0u64..50,
    ) {
        let sim = NodeSim::new(NodeSpec::opteron_k10());
        let fr = Frictions { os_jitter: jit, meter_noise: 0.02, ..Frictions::default() };
        let run = sim.run(&work, 3, 1.45e9, &fr, seed);
        let e = run.energy;
        prop_assert!(e.cpu_act >= 0.0 && e.cpu_stall >= 0.0 && e.mem >= 0.0
            && e.net >= 0.0 && e.idle >= 0.0);
        prop_assert!((e.cpu_act + e.cpu_stall + e.mem + e.net + e.idle - e.total()).abs()
            < 1e-9 * e.total().max(1.0));
    }

    /// Splitting work across two equal halves run back-to-back costs the
    /// same total busy time as one run (work conservation).
    #[test]
    fn work_splits_conserve_time(act in 1.0e9f64..1.0e10) {
        let sim = NodeSim::new(NodeSpec::cortex_a9());
        let whole = NodeWork { act_cycles: act, ..Default::default() };
        let half = NodeWork { act_cycles: act / 2.0, ..Default::default() };
        let w = sim.run(&whole, 4, 1.4e9, &Frictions::default(), 0);
        let h = sim.run(&half, 4, 1.4e9, &Frictions::default(), 0);
        prop_assert!((w.duration - 2.0 * h.duration).abs() < 1e-9 * w.duration);
    }
}
