//! **Extension beyond the paper**: thermal throttling.
//!
//! The paper's nodes are small enough (5 W / 60 W class) that sustained
//! operation at `fmax` is thermally safe, so its model has no thermal
//! term. Denser modern parts throttle: when sustained power exceeds the
//! cooling budget, the part drops to a lower DVFS state after the thermal
//! capacitance is exhausted. This wrapper composes two simulator runs —
//! a full-speed burst for the thermal headroom window, then the remainder
//! at the next-lower frequency — which is exactly the sustained/burst
//! behaviour datasheets describe.

use crate::node::{Frictions, NodeRun, NodeSim, NodeWork, TimeBreakdown};
use crate::power::EnergyBreakdown;

/// Thermal envelope of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Sustained (cooling-limited) power budget, watts.
    pub tdp_w: f64,
    /// How long the thermal mass absorbs above-TDP operation, seconds.
    pub headroom_s: f64,
}

impl ThermalModel {
    /// A model that never throttles (infinite budget).
    pub fn unconstrained() -> Self {
        ThermalModel {
            tdp_w: f64::INFINITY,
            headroom_s: 0.0,
        }
    }
}

/// Run `work` under a thermal envelope: start at the requested frequency;
/// if the run's average power exceeds the TDP, only the first
/// `headroom_s` proceeds at full speed and the remaining work re-runs at
/// the next-lower DVFS level (recursively, if still above budget).
///
/// Returns the composed run plus the frequency the node settled at.
pub fn run_with_thermal(
    sim: &NodeSim,
    work: &NodeWork,
    cores: u32,
    freq: f64,
    frictions: &Frictions,
    thermal: &ThermalModel,
    seed: u64,
) -> (NodeRun, f64) {
    let full = sim.run(work, cores, freq, frictions, seed);
    if full.avg_power_w <= thermal.tdp_w || full.duration <= thermal.headroom_s {
        return (full, freq);
    }
    // Find the next-lower DVFS level; at fmin the part simply runs hot at
    // its floor (real parts hard-limit here too).
    let spec = sim.spec();
    let lower = spec
        .frequencies
        .iter()
        .copied()
        .filter(|&f| f < freq)
        .fold(f64::NAN, f64::max);
    if lower.is_nan() {
        return (full, freq);
    }

    // Burst phase: the fraction of work completed inside the headroom.
    let burst_fraction = if full.duration > 0.0 {
        (thermal.headroom_s / full.duration).min(1.0)
    } else {
        1.0
    };
    let burst = sim.run(&work.scaled(burst_fraction), cores, freq, frictions, seed);
    let (rest, settled) = run_with_thermal(
        sim,
        &work.scaled(1.0 - burst_fraction),
        cores,
        lower,
        frictions,
        thermal,
        seed.wrapping_add(1),
    );

    let duration = burst.duration + rest.duration;
    let energy = EnergyBreakdown {
        cpu_act: burst.energy.cpu_act + rest.energy.cpu_act,
        cpu_stall: burst.energy.cpu_stall + rest.energy.cpu_stall,
        mem: burst.energy.mem + rest.energy.mem,
        net: burst.energy.net + rest.energy.net,
        idle: burst.energy.idle + rest.energy.idle,
    };
    (
        NodeRun {
            duration,
            avg_power_w: energy.total() / duration,
            energy,
            time: TimeBreakdown {
                cpu: burst.time.cpu + rest.time.cpu,
                mem: burst.time.mem + rest.time.mem,
                io: burst.time.io + rest.time.io,
            },
        },
        settled,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn compute_work(secs_at_fmax: f64, spec: &NodeSpec) -> NodeWork {
        NodeWork {
            act_cycles: spec.cores as f64 * spec.fmax() * secs_at_fmax,
            ..Default::default()
        }
    }

    #[test]
    fn unconstrained_model_never_throttles() {
        let spec = NodeSpec::opteron_k10();
        let sim = NodeSim::new(spec.clone());
        let work = compute_work(5.0, &spec);
        let base = sim.run(&work, spec.cores, spec.fmax(), &Frictions::default(), 0);
        let (run, f) = run_with_thermal(
            &sim,
            &work,
            spec.cores,
            spec.fmax(),
            &Frictions::default(),
            &ThermalModel::unconstrained(),
            0,
        );
        assert_eq!(f, spec.fmax());
        assert_eq!(run.duration, base.duration);
        assert_eq!(run.energy.total(), base.energy.total());
    }

    #[test]
    fn tight_budget_throttles_down_and_slows_the_run() {
        let spec = NodeSpec::opteron_k10();
        let sim = NodeSim::new(spec.clone());
        let work = compute_work(10.0, &spec);
        let base = sim.run(&work, spec.cores, spec.fmax(), &Frictions::default(), 0);
        // Budget below the all-core fmax power, above the idle floor.
        let thermal = ThermalModel {
            tdp_w: base.avg_power_w * 0.8,
            headroom_s: 2.0,
        };
        let (run, f) = run_with_thermal(
            &sim,
            &work,
            spec.cores,
            spec.fmax(),
            &Frictions::default(),
            &thermal,
            0,
        );
        assert!(f < spec.fmax(), "should settle below fmax");
        assert!(run.duration > base.duration, "throttling must cost time");
        assert!(
            run.avg_power_w < base.avg_power_w,
            "sustained power must drop"
        );
    }

    #[test]
    fn short_bursts_fit_in_the_headroom() {
        let spec = NodeSpec::opteron_k10();
        let sim = NodeSim::new(spec.clone());
        let work = compute_work(1.0, &spec); // 1 s burst
        let thermal = ThermalModel {
            tdp_w: 50.0, // below fmax power
            headroom_s: 2.0,
        };
        let (run, f) = run_with_thermal(
            &sim,
            &work,
            spec.cores,
            spec.fmax(),
            &Frictions::default(),
            &thermal,
            0,
        );
        assert_eq!(f, spec.fmax(), "burst shorter than headroom keeps fmax");
        assert!((run.duration - 1.0).abs() < 1e-9);
    }

    #[test]
    fn floor_frequency_is_a_hard_limit() {
        let spec = NodeSpec::cortex_a9();
        let sim = NodeSim::new(spec.clone());
        let work = compute_work(5.0, &spec);
        // Impossible budget: even fmin exceeds it → settles at fmin.
        let thermal = ThermalModel {
            tdp_w: 0.1,
            headroom_s: 0.5,
        };
        let (_, f) = run_with_thermal(
            &sim,
            &work,
            spec.cores,
            spec.fmax(),
            &Frictions::default(),
            &thermal,
            0,
        );
        assert_eq!(f, spec.fmin());
    }

    #[test]
    fn energy_composes_across_phases() {
        let spec = NodeSpec::opteron_k10();
        let sim = NodeSim::new(spec.clone());
        let work = compute_work(6.0, &spec);
        let thermal = ThermalModel {
            tdp_w: 60.0,
            headroom_s: 1.0,
        };
        let (run, _) = run_with_thermal(
            &sim,
            &work,
            spec.cores,
            spec.fmax(),
            &Frictions::default(),
            &thermal,
            0,
        );
        assert!(
            (run.avg_power_w * run.duration - run.energy.total()).abs()
                < 1e-9 * run.energy.total()
        );
    }
}
