//! A minimal discrete-event engine: a time-ordered event queue with
//! deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event tagged with its firing time and an insertion sequence number
/// (ties in time fire in insertion order, keeping runs deterministic).
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// Simulated firing time, seconds.
    pub time: f64,
    /// Monotonic insertion index (tie-breaker).
    pub seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for TimedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for TimedEvent<E> {}
impl<E> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<TimedEvent<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedule `event` at absolute time `time` (must not be in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "event time must be finite");
        debug_assert!(
            time >= self.now - 1e-12 * self.now.abs().max(1.0),
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(TimedEvent {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the simulation clock to it.
    pub fn pop(&mut self) -> Option<TimedEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.schedule(7.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.pop();
        assert_eq!(q.now(), 7.0);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
