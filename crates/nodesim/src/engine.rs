//! A minimal discrete-event engine: a time-ordered event queue with
//! deterministic FIFO tie-breaking.

use enprop_obs::Recorder;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event tagged with its firing time and an insertion sequence number
/// (ties in time fire in insertion order, keeping runs deterministic).
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// Simulated firing time, seconds.
    pub time: f64,
    /// Monotonic insertion index (tie-breaker).
    pub seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for TimedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for TimedEvent<E> {}
impl<E> PartialOrd for TimedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for TimedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<TimedEvent<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedule `event` at absolute time `time` (must not be in the past).
    ///
    /// Zero-delay reschedules (`time == now`) are always legal, including
    /// at the `now == 0.0` boundary; otherwise `time` may undershoot `now`
    /// by at most a few ULPs of rounding slack. (An earlier version used a
    /// relative epsilon of `1e-12 · max(|now|, 1)`, which at `now == 0.0`
    /// silently accepted genuinely past times down to `-1e-12`.)
    pub fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "event time must be finite");
        debug_assert!(
            time >= self.now || self.now - time <= 4.0 * f64::EPSILON * self.now.abs(),
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(TimedEvent {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// [`EventQueue::schedule`] plus telemetry: tallies the scheduled-event
    /// counter and samples the post-insert queue depth. With a
    /// [`enprop_obs::NoopRecorder`] this monomorphizes to plain
    /// `schedule`.
    pub fn schedule_obs<R: Recorder>(&mut self, time: f64, event: E, rec: &mut R) {
        self.schedule(time, event);
        if R::ACTIVE {
            rec.tally("nodesim.eq.scheduled", 1);
            rec.observe("nodesim.eq.depth", self.len() as f64);
        }
    }

    /// Pop the earliest event, advancing the simulation clock to it.
    pub fn pop(&mut self) -> Option<TimedEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// [`EventQueue::pop`] plus telemetry: tallies the popped-event
    /// counter.
    pub fn pop_obs<R: Recorder>(&mut self, rec: &mut R) -> Option<TimedEvent<E>> {
        let ev = self.pop();
        if R::ACTIVE && ev.is_some() {
            rec.tally("nodesim.eq.popped", 1);
        }
        ev
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.schedule(7.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.pop();
        assert_eq!(q.now(), 7.0);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn zero_delay_reschedule_is_legal_at_time_zero() {
        let mut q = EventQueue::new();
        q.schedule(0.0, "boot");
        q.pop();
        assert_eq!(q.now(), 0.0);
        // Re-arming at exactly `now` must never trip the past-time check,
        // including at the t = 0 boundary.
        q.schedule(0.0, "rearm");
        assert_eq!(q.pop().map(|e| e.event), Some("rearm"));
    }

    #[test]
    fn zero_delay_reschedule_is_legal_after_advance() {
        let mut q = EventQueue::new();
        q.schedule(3.5, ());
        q.pop();
        q.schedule(3.5, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ulp_rounding_slack_is_tolerated() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.pop();
        // One ULP below `now` — the kind of drift `a + b - b` rounding
        // produces — is accepted.
        q.schedule(1.0 - f64::EPSILON, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cannot schedule into the past")]
    fn genuinely_past_time_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.9, ());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cannot schedule into the past")]
    fn negative_time_at_origin_panics_in_debug() {
        let mut q: EventQueue<()> = EventQueue::new();
        // The old relative-epsilon check (`now - 1e-12·max(|now|,1)`)
        // silently accepted this at now == 0.0.
        q.schedule(-1e-13, ());
    }

    #[test]
    fn obs_variants_count_traffic_and_sample_depth() {
        use enprop_obs::{MemoryRecorder, NoopRecorder};

        let mut q = EventQueue::new();
        let mut rec = MemoryRecorder::new();
        q.schedule_obs(1.0, "a", &mut rec);
        q.schedule_obs(2.0, "b", &mut rec);
        while q.pop_obs(&mut rec).is_some() {}
        assert_eq!(rec.counters()["nodesim.eq.scheduled"], 2);
        assert_eq!(rec.counters()["nodesim.eq.popped"], 2);
        assert_eq!(rec.histograms()["nodesim.eq.depth"].count(), 2);
        assert_eq!(rec.histograms()["nodesim.eq.depth"].max(), Some(2.0));

        // Noop path exercises the same code shape without recording.
        let mut q2 = EventQueue::new();
        let mut noop = NoopRecorder;
        q2.schedule_obs(1.0, (), &mut noop);
        assert!(q2.pop_obs(&mut noop).is_some());
    }
}
