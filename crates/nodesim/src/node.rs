//! The node simulator: executes a job's work demand on a multicore node
//! and reports time and per-component energy.
//!
//! The execution model follows the paper's §II-D: work cycles split across
//! active cores; memory requests go through a single shared (UMA) memory
//! controller; out-of-order cores overlap compute with memory; a DMA NIC
//! overlaps network transfers with everything. On top of that idealized
//! model, [`Frictions`] injects the real-world effects an analytic model
//! cannot see — the source of the validation error the paper reports in
//! Table 4.

use crate::engine::EventQueue;
use crate::noise::Jitter;
use crate::power::EnergyBreakdown;
use crate::spec::NodeSpec;
use enprop_obs::{NoopRecorder, PowerSample, Recorder, Track};

/// Number of compute/memory interleaving chunks each core's slice is split
/// into; enough to let memory-controller contention emerge without
/// simulating individual cache lines.
const CHUNKS_PER_CORE: usize = 16;

/// A job's total work demand on one node (paper Table 1 workload
/// parameters, resolved to this node's share of the job).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeWork {
    /// CPU work cycles to retire, summed over cores.
    pub act_cycles: f64,
    /// Memory busy cycles (scale with core frequency, per the paper's
    /// `T_mem = cycles_mem / f` simplification).
    pub mem_cycles: f64,
    /// Bytes moved through the memory controller (bandwidth floor).
    pub mem_bytes: f64,
    /// Bytes transferred by the NIC.
    pub io_bytes: f64,
    /// Number of network requests (for the arrival-rate bound).
    pub io_requests: f64,
    /// Request inter-arrival rate `λ_I/O` in requests/second
    /// (0 = no arrival-rate bound).
    pub io_rate: f64,
    /// Instruction-mix power factor: scales the per-core *active* power
    /// relative to the CPU-max micro-benchmark (a NEON-heavy loop draws
    /// more than pointer chasing). 1.0 = micro-benchmark mix.
    pub act_power_scale: f64,
}

impl Default for NodeWork {
    fn default() -> Self {
        NodeWork {
            act_cycles: 0.0,
            mem_cycles: 0.0,
            mem_bytes: 0.0,
            io_bytes: 0.0,
            io_requests: 0.0,
            io_rate: 0.0,
            act_power_scale: 1.0,
        }
    }
}

impl NodeWork {
    /// Scale every demand component (splitting a job across nodes).
    pub fn scaled(&self, k: f64) -> Self {
        NodeWork {
            act_cycles: self.act_cycles * k,
            mem_cycles: self.mem_cycles * k,
            mem_bytes: self.mem_bytes * k,
            io_bytes: self.io_bytes * k,
            io_requests: self.io_requests * k,
            io_rate: self.io_rate,                   // a rate, not a quantity
            act_power_scale: self.act_power_scale,   // a property, not a quantity
        }
    }

    /// True when the job demands nothing.
    pub fn is_empty(&self) -> bool {
        self.act_cycles == 0.0
            && self.mem_cycles == 0.0
            && self.mem_bytes == 0.0
            && self.io_bytes == 0.0
    }
}

/// Second-order effects the analytic model omits. `Frictions::default()`
/// is the friction-free setting under which the simulator agrees with the
/// model to numerical precision (asserted in tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frictions {
    /// Fraction of memory time hidden by out-of-order execution
    /// (model assumes 1.0 — the `max(T_core, T_mem)` overlap).
    pub ooo_overlap: f64,
    /// OS scheduling imbalance: extra share of work landing on one core.
    pub sched_imbalance: f64,
    /// Network protocol efficiency (model assumes raw line rate, 1.0).
    pub io_efficiency: f64,
    /// Memory-controller contention loss: fraction of bandwidth lost to
    /// bank conflicts / row misses when multiple cores interleave
    /// requests (model assumes a perfectly pipelined controller).
    pub mem_contention: f64,
    /// Multiplicative OS jitter σ applied per execution chunk.
    pub os_jitter: f64,
    /// Dynamic-power excess the meter sees vs the component model
    /// (VRM losses, fans ramping with load).
    pub power_excess: f64,
    /// Measurement noise σ on reported energy (power-meter tolerance).
    pub meter_noise: f64,
}

impl Default for Frictions {
    fn default() -> Self {
        Frictions {
            ooo_overlap: 1.0,
            sched_imbalance: 0.0,
            io_efficiency: 1.0,
            mem_contention: 0.0,
            os_jitter: 0.0,
            power_excess: 0.0,
            meter_noise: 0.0,
        }
    }
}

/// Wall-clock composition of one run (the paper's Table 2 time terms).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Time until the last core finished (`T_CPU`), seconds.
    pub cpu: f64,
    /// Total memory-controller busy time (`~T_mem`), seconds.
    pub mem: f64,
    /// NIC busy time (`T_I/O`), seconds.
    pub io: f64,
}

/// Result of simulating one job on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeRun {
    /// Job wall-clock time on this node, seconds.
    pub duration: f64,
    /// Per-component energy, joules (already including friction effects
    /// and measurement noise).
    pub energy: EnergyBreakdown,
    /// Wall-clock composition.
    pub time: TimeBreakdown,
    /// Average power over the run, watts.
    pub avg_power_w: f64,
}

/// Simulator for a single node type.
#[derive(Debug, Clone)]
pub struct NodeSim {
    spec: NodeSpec,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A core begins its `chunk`-th compute/memory chunk.
    ChunkStart { core: u32, chunk: usize },
}

impl NodeSim {
    /// Build a simulator for the given node specification.
    pub fn new(spec: NodeSpec) -> Self {
        NodeSim { spec }
    }

    /// The simulated node's specification.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Execute `work` on `cores` active cores at core frequency `freq`
    /// (must be a DVFS level of the spec), under the given frictions, with
    /// a deterministic seed.
    ///
    /// # Panics
    /// Panics when the operating point is invalid for this node.
    pub fn run(
        &self,
        work: &NodeWork,
        cores: u32,
        freq: f64,
        frictions: &Frictions,
        seed: u64,
    ) -> NodeRun {
        self.run_obs(
            work,
            cores,
            freq,
            frictions,
            seed,
            0.0,
            Track::Node { group: 0, node: 0 },
            &mut NoopRecorder,
        )
    }

    /// [`NodeSim::run`] plus telemetry: the run is placed at sim-time `t0`
    /// on `track`, emitting an engine-traffic tally, a `node_run` span, a
    /// DVFS-transition counter pair (idle → `freq` at start, back at end)
    /// and a per-component [`PowerSample`] averaged over the run.
    ///
    /// With a [`NoopRecorder`] this is exactly [`NodeSim::run`] — the
    /// computation (and every RNG draw) is identical regardless of `R`.
    ///
    /// # Panics
    /// Panics when the operating point is invalid for this node.
    #[allow(clippy::too_many_arguments)]
    pub fn run_obs<R: Recorder>(
        &self,
        work: &NodeWork,
        cores: u32,
        freq: f64,
        frictions: &Frictions,
        seed: u64,
        t0: f64,
        track: Track,
        rec: &mut R,
    ) -> NodeRun {
        self.spec
            .validate_operating_point(cores, freq)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            (0.0..=1.0).contains(&frictions.ooo_overlap),
            "ooo_overlap must be in [0, 1]"
        );
        assert!(
            frictions.io_efficiency > 0.0 && frictions.io_efficiency <= 1.0,
            "io_efficiency must be in (0, 1]"
        );

        if work.is_empty() {
            return NodeRun {
                duration: 0.0,
                energy: EnergyBreakdown::default(),
                time: TimeBreakdown::default(),
                avg_power_w: 0.0,
            };
        }

        let mut jitter = Jitter::new(seed);
        let c = cores as usize;

        // Per-core work slices; scheduling imbalance shifts extra load onto
        // core 0 and removes it evenly from the others (total preserved).
        let share = 1.0 / c as f64;
        let mut slice = vec![share; c];
        if c > 1 && frictions.sched_imbalance > 0.0 {
            let extra = share * frictions.sched_imbalance;
            slice[0] += extra;
            for s in slice.iter_mut().skip(1) {
                *s -= extra / (c - 1) as f64;
            }
        }

        // Chunk-level demand per core.
        let chunk_act_cycles: Vec<f64> = slice
            .iter()
            .map(|s| work.act_cycles * s / CHUNKS_PER_CORE as f64)
            .collect();
        let chunk_mem_cycles: Vec<f64> = slice
            .iter()
            .map(|s| work.mem_cycles * s / CHUNKS_PER_CORE as f64)
            .collect();
        let chunk_mem_bytes: Vec<f64> = slice
            .iter()
            .map(|s| work.mem_bytes * s / CHUNKS_PER_CORE as f64)
            .collect();

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for core in 0..cores {
            queue.schedule_obs(0.0, Ev::ChunkStart { core, chunk: 0 }, rec);
        }

        let mut controller_free = 0.0f64;
        let mut controller_busy = 0.0f64;
        let mut act_time = vec![0.0f64; c];
        let mut stall_time = vec![0.0f64; c];
        let mut core_done = vec![0.0f64; c];

        while let Some(ev) = queue.pop_obs(rec) {
            let Ev::ChunkStart { core, chunk } = ev.event;
            let i = core as usize;
            let t0 = ev.time;

            // Memory request: issued at chunk start, granted FIFO by the
            // shared controller; service is the slower of the cycle model
            // and the bandwidth floor.
            let mem_svc_raw = (chunk_mem_cycles[i] / freq)
                .max(chunk_mem_bytes[i] / self.spec.mem_bandwidth);
            // Contention loss grows with the number of interleaving cores.
            let contention = 1.0 + frictions.mem_contention * (c as f64 - 1.0) / c as f64;
            let mem_svc = mem_svc_raw * contention * jitter.factor(frictions.os_jitter);
            let mem_done = if mem_svc > 0.0 {
                let grant = controller_free.max(t0);
                controller_free = grant + mem_svc;
                controller_busy += mem_svc;
                controller_free
            } else {
                t0
            };

            // Compute chunk runs concurrently with the memory request
            // (out-of-order overlap); the residual models the imperfect
            // part of that overlap.
            let act = (chunk_act_cycles[i] / freq) * jitter.factor(frictions.os_jitter);
            let act_done = t0 + act;
            let residual = (1.0 - frictions.ooo_overlap) * act.min(mem_done - t0);
            let chunk_end = act_done.max(mem_done) + residual;

            act_time[i] += act;
            stall_time[i] += chunk_end - act_done;

            if chunk + 1 < CHUNKS_PER_CORE {
                queue.schedule_obs(
                    chunk_end,
                    Ev::ChunkStart {
                        core,
                        chunk: chunk + 1,
                    },
                    rec,
                );
            } else {
                core_done[i] = chunk_end;
            }
        }

        let cpu_time = core_done.iter().cloned().fold(0.0f64, f64::max);

        // NIC: a single DMA-overlapped transfer window, bounded below by the
        // request arrival process (`T_I/O = max(T_transfer, reqs/λ)`).
        let io_transfer = work.io_bytes / (self.spec.net_bandwidth * frictions.io_efficiency);
        let io_arrival = if work.io_rate > 0.0 {
            work.io_requests / work.io_rate
        } else {
            0.0
        };
        let io_time = io_transfer.max(io_arrival)
            * if work.io_bytes > 0.0 {
                jitter.factor(frictions.os_jitter)
            } else {
                1.0
            };

        let duration = cpu_time.max(io_time);

        // Energy accounting per Table 2, with friction effects on the
        // dynamic components and meter noise on everything.
        let fmax = self.spec.fmax();
        let p = &self.spec.power;
        let dyn_scale = 1.0 + frictions.power_excess;
        let cpu_act_e: f64 = act_time.iter().sum::<f64>()
            * p.core_act_at(freq, fmax)
            * work.act_power_scale
            * dyn_scale;
        let cpu_stall_e: f64 =
            stall_time.iter().sum::<f64>() * p.core_stall_at(freq, fmax) * dyn_scale;
        let mem_e = controller_busy * p.mem_w * dyn_scale;
        let net_e = io_time * p.net_w * dyn_scale;
        let idle_e = duration * p.sys_idle_w;

        let energy = EnergyBreakdown {
            cpu_act: cpu_act_e,
            cpu_stall: cpu_stall_e,
            mem: mem_e,
            net: net_e,
            idle: idle_e,
        }
        .scaled(jitter.factor(frictions.meter_noise));

        if R::ACTIVE && duration > 0.0 {
            rec.span_begin(t0, track, "node_run", seed);
            // Two DVFS transitions per run: idle → `freq` at dispatch and
            // back to idle at completion.
            rec.counter(t0, track, "node.dvfs_transitions", 1);
            rec.counter(t0 + duration, track, "node.dvfs_transitions", 1);
            rec.power(
                t0 + duration,
                track,
                PowerSample {
                    cpu_act_w: energy.cpu_act / duration,
                    cpu_stall_w: energy.cpu_stall / duration,
                    mem_w: energy.mem / duration,
                    net_w: energy.net / duration,
                    idle_w: energy.idle / duration,
                },
            );
            rec.span_end(t0 + duration, track, "node_run", seed);
        }

        NodeRun {
            duration,
            avg_power_w: if duration > 0.0 {
                energy.total() / duration
            } else {
                0.0
            },
            energy,
            time: TimeBreakdown {
                cpu: cpu_time,
                mem: controller_busy,
                io: io_time,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a9() -> NodeSim {
        NodeSim::new(NodeSpec::cortex_a9())
    }

    fn cpu_work(cycles: f64) -> NodeWork {
        NodeWork {
            act_cycles: cycles,
            ..Default::default()
        }
    }

    #[test]
    fn frictionless_cpu_bound_matches_model() {
        // T = cycles / (c·f) exactly when friction-free.
        let sim = a9();
        let run = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &Frictions::default(), 0);
        assert!((run.duration - 1.0).abs() < 1e-9, "duration {}", run.duration);
        // Energy: act power for 1 s per core + idle.
        let p = &sim.spec().power;
        let expect = 4.0 * p.core_act_w * 1.0 + p.sys_idle_w;
        assert!((run.energy.total() - expect).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_inverse_with_frequency() {
        let sim = a9();
        let fast = sim.run(&cpu_work(1.4e9), 1, 1.4e9, &Frictions::default(), 0);
        let slow = sim.run(&cpu_work(1.4e9), 1, 0.2e9, &Frictions::default(), 0);
        assert!((slow.duration / fast.duration - 7.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_inverse_with_cores() {
        let sim = a9();
        let one = sim.run(&cpu_work(1.4e9), 1, 1.4e9, &Frictions::default(), 0);
        let four = sim.run(&cpu_work(1.4e9), 4, 1.4e9, &Frictions::default(), 0);
        assert!((one.duration / four.duration - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dvfs_lowers_power_but_costs_time() {
        let sim = a9();
        let fast = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &Frictions::default(), 0);
        let slow = sim.run(&cpu_work(5.6e9), 4, 0.8e9, &Frictions::default(), 0);
        assert!(slow.duration > fast.duration);
        assert!(slow.avg_power_w < fast.avg_power_w);
    }

    #[test]
    fn memory_bound_work_is_serialized_by_the_controller() {
        // All-memory work: duration ≈ mem_cycles / f regardless of cores
        // (UMA controller is the bottleneck), vs /c for CPU work.
        let sim = a9();
        let work = NodeWork {
            mem_cycles: 1.4e9,
            ..Default::default()
        };
        let one = sim.run(&work, 1, 1.4e9, &Frictions::default(), 0);
        let four = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        assert!((one.duration - 1.0).abs() < 1e-9);
        assert!((four.duration - 1.0).abs() < 0.05, "got {}", four.duration);
    }

    #[test]
    fn bandwidth_floor_binds_when_cycles_underestimate() {
        // 3 GB through a 1.5 GB/s controller takes ≥ 2 s even if the cycle
        // model claims less.
        let sim = a9();
        let work = NodeWork {
            mem_cycles: 1.4e8, // 0.1 s by cycles
            mem_bytes: 3.0e9,
            ..Default::default()
        };
        let run = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        assert!((run.duration - 2.0).abs() < 1e-6, "got {}", run.duration);
    }

    #[test]
    fn nic_overlaps_cpu_completely() {
        // I/O shorter than CPU: duration unchanged (DMA overlap, §II-D).
        let sim = a9();
        let mut work = cpu_work(5.6e9); // 1 s CPU
        work.io_bytes = 1.0e6; // 0.08 s on 100 Mbps
        let run = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        assert!((run.duration - 1.0).abs() < 1e-9);
        // I/O longer than CPU: NIC dominates.
        work.io_bytes = 25.0e6; // 2 s on 100 Mbps
        let run = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        assert!((run.duration - 2.0).abs() < 1e-6);
    }

    #[test]
    fn io_arrival_rate_bounds_duration() {
        // 1000 requests at λ = 500/s cannot finish before 2 s.
        let sim = a9();
        let work = NodeWork {
            act_cycles: 1.4e8,
            io_bytes: 1.0e3,
            io_requests: 1000.0,
            io_rate: 500.0,
            ..Default::default()
        };
        let run = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        assert!((run.duration - 2.0).abs() < 1e-6, "got {}", run.duration);
    }

    #[test]
    fn imperfect_overlap_adds_stall_time() {
        let sim = a9();
        let work = NodeWork {
            act_cycles: 2.8e9,
            mem_cycles: 0.7e9,
            ..Default::default()
        };
        let ideal = sim.run(&work, 4, 1.4e9, &Frictions::default(), 0);
        let fr = Frictions {
            ooo_overlap: 0.5,
            ..Frictions::default()
        };
        let rough = sim.run(&work, 4, 1.4e9, &fr, 0);
        assert!(rough.duration > ideal.duration);
        assert!(rough.energy.cpu_stall > ideal.energy.cpu_stall);
    }

    #[test]
    fn scheduling_imbalance_stretches_the_critical_path() {
        let sim = a9();
        let fr = Frictions {
            sched_imbalance: 0.10,
            ..Frictions::default()
        };
        let even = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &Frictions::default(), 0);
        let skew = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &fr, 0);
        assert!((skew.duration / even.duration - 1.10).abs() < 1e-6);
    }

    #[test]
    fn protocol_overhead_slows_io() {
        let sim = a9();
        let work = NodeWork {
            io_bytes: 12.5e6, // 1 s raw
            ..Default::default()
        };
        let fr = Frictions {
            io_efficiency: 0.8,
            ..Frictions::default()
        };
        let run = sim.run(&work, 1, 1.4e9, &fr, 0);
        assert!((run.duration - 1.25).abs() < 1e-6);
    }

    #[test]
    fn power_excess_raises_energy_not_time() {
        let sim = a9();
        let base = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &Frictions::default(), 0);
        let fr = Frictions {
            power_excess: 0.10,
            ..Frictions::default()
        };
        let hot = sim.run(&cpu_work(5.6e9), 4, 1.4e9, &fr, 0);
        assert_eq!(hot.duration, base.duration);
        assert!(hot.energy.cpu_act > base.energy.cpu_act);
        assert_eq!(hot.energy.idle, base.energy.idle, "idle power is measured, not modeled");
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let sim = a9();
        let fr = Frictions {
            os_jitter: 0.05,
            meter_noise: 0.02,
            ..Frictions::default()
        };
        let work = cpu_work(5.6e9);
        let a = sim.run(&work, 4, 1.4e9, &fr, 123);
        let b = sim.run(&work, 4, 1.4e9, &fr, 123);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.energy.total(), b.energy.total());
        let c = sim.run(&work, 4, 1.4e9, &fr, 124);
        assert_ne!(a.duration, c.duration);
    }

    #[test]
    fn empty_work_is_instant_and_free() {
        let run = a9().run(&NodeWork::default(), 4, 1.4e9, &Frictions::default(), 0);
        assert_eq!(run.duration, 0.0);
        assert_eq!(run.energy.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "active cores")]
    fn rejects_too_many_cores() {
        a9().run(&NodeWork::default(), 5, 1.4e9, &Frictions::default(), 0);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let sim = a9();
        let run = sim.run(&cpu_work(5.6e9), 2, 1.1e9, &Frictions::default(), 0);
        assert!((run.avg_power_w * run.duration - run.energy.total()).abs() < 1e-9);
    }

    #[test]
    fn run_obs_is_bit_identical_and_records_the_run() {
        use enprop_obs::{EventKind, MemoryRecorder};

        let sim = a9();
        let fr = Frictions {
            os_jitter: 0.05,
            meter_noise: 0.02,
            ..Frictions::default()
        };
        let work = NodeWork {
            act_cycles: 5.6e9,
            mem_cycles: 0.7e9,
            io_bytes: 1.0e6,
            ..Default::default()
        };
        let plain = sim.run(&work, 4, 1.4e9, &fr, 42);

        let mut rec = MemoryRecorder::new();
        let track = Track::Node { group: 1, node: 3 };
        let traced = sim.run_obs(&work, 4, 1.4e9, &fr, 42, 10.0, track, &mut rec);
        assert_eq!(plain, traced, "instrumentation must not perturb the run");

        // Engine traffic: 4 cores × 16 chunks scheduled and popped.
        assert_eq!(rec.counters()["nodesim.eq.scheduled"], 64);
        assert_eq!(rec.counters()["nodesim.eq.popped"], 64);
        assert_eq!(rec.counters()["node.dvfs_transitions"], 2);

        // One node_run span at [t0, t0 + duration] plus a power sample
        // whose components average to the run's energy.
        let begin = rec
            .events()
            .iter()
            .find(|e| e.name == "node_run" && matches!(e.kind, EventKind::SpanBegin))
            .expect("span begin");
        assert_eq!(begin.t_s, 10.0);
        let power = rec
            .events()
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Power { sample } => Some(sample),
                _ => None,
            })
            .expect("power sample");
        assert!((power.total_w() * traced.duration - traced.energy.total()).abs() < 1e-9);
    }
}
