//! # enprop-nodesim
//!
//! An event-driven simulator of the heterogeneous server nodes the paper
//! measured physically (Table 5): the wimpy quad-core **ARM Cortex-A9**
//! (5 W class) and the brawny six-core **AMD Opteron K10** (60 W class),
//! plus room for other node types.
//!
//! The simulator plays the role of the paper's testbed: where the authors
//! ran micro-benchmarks on real boards and measured power with a Yokogawa
//! WT210, we run the same micro-benchmarks against this simulator and
//! "measure" the power parameters of Table 1 (`P_CPU,act`, `P_CPU,stall`,
//! `P_mem`, `P_net`, `P_sys,idle`). Crucially, the simulator implements the
//! second-order effects the paper's *analytic model omits* — shared
//! memory-controller contention, imperfect out-of-order overlap, network
//! protocol overhead, OS scheduling jitter — which is what makes the
//! model-vs-measured validation (paper Table 4) a non-trivial experiment.
//!
//! Execution model (paper §II-D): multicore nodes, super-scalar cores with
//! out-of-order issue (memory access overlaps compute), a single shared
//! UMA memory controller, and a DMA-driven NIC whose transfers overlap CPU
//! activity entirely.
//!
//! ```
//! use enprop_nodesim::{NodeSim, NodeSpec, NodeWork, Frictions};
//!
//! let spec = NodeSpec::cortex_a9();
//! let work = NodeWork {
//!     act_cycles: 2.0e9,
//!     mem_cycles: 4.0e8,
//!     mem_bytes: 2.0e8,
//!     ..NodeWork::default()
//! };
//! let run = NodeSim::new(spec).run(&work, 4, 1.4e9, &Frictions::default(), 42);
//! assert!(run.duration > 0.0 && run.energy.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod engine;
mod microbench;
mod node;
mod noise;
mod power;
mod spec;
mod thermal;

pub use engine::{EventQueue, TimedEvent};
pub use microbench::{characterize, characterize_dvfs_exponent, MeasuredPowerParams, MicroBench};
pub use node::{Frictions, NodeRun, NodeSim, NodeWork, TimeBreakdown};
pub use noise::Jitter;
pub use power::{EnergyBreakdown, PowerSpec};
pub use spec::NodeSpec;
pub use thermal::{run_with_thermal, ThermalModel};
