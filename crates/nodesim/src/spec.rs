//! Node hardware specifications (paper Table 5).

use crate::power::PowerSpec;

/// Static description of one node type.
///
/// Frequencies are in Hz, bandwidths in bytes/second, cache sizes in bytes.
/// The built-in [`NodeSpec::cortex_a9`] and [`NodeSpec::opteron_k10`]
/// reproduce the paper's Table 5; the footnote-4 configuration count
/// depends on the DVFS level counts (5 for the ARM node, 3 for the AMD).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable node name (e.g. "A9").
    pub name: &'static str,
    /// Instruction-set architecture label (informational).
    pub isa: &'static str,
    /// Number of physical cores.
    pub cores: u32,
    /// Selectable core clock frequencies in Hz, ascending.
    pub frequencies: Vec<f64>,
    /// L1 data cache per core, bytes.
    pub l1d_per_core: u64,
    /// L2 cache (total), bytes.
    pub l2_total: u64,
    /// L3 cache (total), bytes; 0 when absent.
    pub l3_total: u64,
    /// Main memory, bytes.
    pub memory: u64,
    /// Sustainable memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Network I/O bandwidth, bytes/second.
    pub net_bandwidth: f64,
    /// Component power model.
    pub power: PowerSpec,
}

impl NodeSpec {
    /// The wimpy node: ARM Cortex-A9, ARMv7-A, 4 cores, 0.2–1.4 GHz,
    /// 32 KB L1d/core, 1 MB shared L2, 1 GB LP-DDR2, 100 Mbps NIC.
    ///
    /// Power calibration: 1.8 W idle (paper §III-B); dynamic parameters
    /// sized so per-workload busy power spans the 2.17–2.81 W range implied
    /// by Table 7's IPR column with nameplate headroom up to 5 W.
    pub fn cortex_a9() -> Self {
        NodeSpec {
            name: "A9",
            isa: "ARMv7-A",
            cores: 4,
            frequencies: vec![0.2e9, 0.5e9, 0.8e9, 1.1e9, 1.4e9],
            l1d_per_core: 32 << 10,
            l2_total: 1 << 20,
            l3_total: 0,
            memory: 1 << 30,
            mem_bandwidth: 1.5e9,       // LP-DDR2 sustainable
            net_bandwidth: 100.0e6 / 8.0, // 100 Mbps
            power: PowerSpec {
                sys_idle_w: 1.8,
                core_act_w: 0.32,
                core_stall_w: 0.11,
                mem_w: 0.20,
                net_w: 0.25,
                freq_exp: 1.9,
            },
        }
    }

    /// The brawny node: AMD Opteron K10, x86-64, 6 cores, 0.8–2.1 GHz,
    /// 64 KB L1d/core, 512 KB L2/core, 6 MB L3, 8 GB DDR3, 1 Gbps NIC.
    ///
    /// Power calibration: 45 W idle (paper §III-B); dynamic parameters
    /// sized for the 50.6–76.3 W per-workload busy-power range implied by
    /// Table 7 against the ~60 W nameplate.
    pub fn opteron_k10() -> Self {
        NodeSpec {
            name: "K10",
            isa: "x86_64",
            cores: 6,
            frequencies: vec![0.8e9, 1.45e9, 2.1e9],
            l1d_per_core: 64 << 10,
            l2_total: 6 * (512 << 10),
            l3_total: 6 << 20,
            memory: 8 << 30,
            mem_bandwidth: 8.0e9,        // DDR3 sustainable
            net_bandwidth: 1000.0e6 / 8.0, // 1 Gbps
            power: PowerSpec {
                sys_idle_w: 45.0,
                core_act_w: 5.6,
                core_stall_w: 2.1,
                mem_w: 3.5,
                net_w: 1.2,
                freq_exp: 1.9,
            },
        }
    }

    /// An ARM Cortex-A15 class node (extension beyond the paper's testbed,
    /// listed in §II-D as covered by the execution model).
    pub fn cortex_a15() -> Self {
        NodeSpec {
            name: "A15",
            isa: "ARMv7-A",
            cores: 4,
            frequencies: vec![0.6e9, 1.0e9, 1.4e9, 1.8e9],
            l1d_per_core: 32 << 10,
            l2_total: 2 << 20,
            l3_total: 0,
            memory: 2 << 30,
            mem_bandwidth: 3.0e9,
            net_bandwidth: 1000.0e6 / 8.0,
            power: PowerSpec {
                sys_idle_w: 3.2,
                core_act_w: 1.1,
                core_stall_w: 0.4,
                mem_w: 0.5,
                net_w: 0.4,
                freq_exp: 2.1,
            },
        }
    }

    /// An Intel Xeon class node (extension; §II-D lists Xeon as covered).
    pub fn xeon_e5() -> Self {
        NodeSpec {
            name: "XeonE5",
            isa: "x86_64",
            cores: 8,
            frequencies: vec![1.2e9, 1.8e9, 2.4e9, 2.9e9],
            l1d_per_core: 32 << 10,
            l2_total: 8 * (256 << 10),
            l3_total: 20 << 20,
            memory: 32u64 << 30,
            mem_bandwidth: 40.0e9,
            net_bandwidth: 10_000.0e6 / 8.0,
            power: PowerSpec {
                sys_idle_w: 60.0,
                core_act_w: 9.0,
                core_stall_w: 3.4,
                mem_w: 8.0,
                net_w: 4.0,
                freq_exp: 2.0,
            },
        }
    }

    /// A Raspberry Pi 4 class node (DALEK-style unconventional cluster
    /// building block): Cortex-A72, 4 cores, 0.6–1.5 GHz, 4 GB LPDDR4,
    /// gigabit NIC. Power calibration follows published board-level
    /// measurements: ~2.1 W idle, ~6 W package peak.
    pub fn raspberry_pi4() -> Self {
        NodeSpec {
            name: "Pi4",
            isa: "ARMv8-A",
            cores: 4,
            frequencies: vec![0.6e9, 1.0e9, 1.5e9],
            l1d_per_core: 32 << 10,
            l2_total: 1 << 20,
            l3_total: 0,
            memory: 4u64 << 30,
            mem_bandwidth: 4.0e9,          // LPDDR4 sustainable
            net_bandwidth: 1000.0e6 / 8.0, // 1 Gbps
            power: PowerSpec {
                sys_idle_w: 2.1,
                core_act_w: 0.55,
                core_stall_w: 0.18,
                mem_w: 0.30,
                net_w: 0.35,
                freq_exp: 2.0,
            },
        }
    }

    /// An Orange Pi 5 class node (RK3588-style big core cluster treated as
    /// 8 uniform cores): 0.8–2.4 GHz, 8 GB LPDDR4X, gigabit NIC. Idle
    /// ~3.4 W, peak ~10 W — the "wimpy but modern" point of a DALEK mix.
    pub fn orange_pi5() -> Self {
        NodeSpec {
            name: "OPi5",
            isa: "ARMv8.2-A",
            cores: 8,
            frequencies: vec![0.8e9, 1.4e9, 1.8e9, 2.4e9],
            l1d_per_core: 64 << 10,
            l2_total: 2 << 20,
            l3_total: 3 << 20,
            memory: 8u64 << 30,
            mem_bandwidth: 8.0e9,          // LPDDR4X sustainable
            net_bandwidth: 1000.0e6 / 8.0, // 1 Gbps
            power: PowerSpec {
                sys_idle_w: 3.4,
                core_act_w: 0.70,
                core_stall_w: 0.22,
                mem_w: 0.45,
                net_w: 0.35,
                freq_exp: 2.1,
            },
        }
    }

    /// Highest selectable core frequency, Hz.
    pub fn fmax(&self) -> f64 {
        *self
            .frequencies
            .last()
            .expect("NodeSpec must define at least one frequency")
    }

    /// Lowest selectable core frequency, Hz.
    pub fn fmin(&self) -> f64 {
        *self
            .frequencies
            .first()
            .expect("NodeSpec must define at least one frequency")
    }

    /// Validate a `(cores, frequency)` operating point against this spec.
    pub fn validate_operating_point(&self, cores: u32, freq: f64) -> Result<(), String> {
        if cores == 0 || cores > self.cores {
            return Err(format!(
                "{}: requested {cores} active cores, node has {}",
                self.name, self.cores
            ));
        }
        let ok = self
            .frequencies
            .iter()
            .any(|&f| (f - freq).abs() < 1e-6 * f.max(1.0));
        if !ok {
            return Err(format!(
                "{}: frequency {freq} Hz is not a DVFS level of this node",
                self.name
            ));
        }
        Ok(())
    }

    /// Nameplate peak power: everything active at `fmax` (used for power
    /// budgeting; the paper quotes ~5 W for A9, ~60 W for K10).
    pub fn nameplate_peak_w(&self) -> f64 {
        self.power.busy_power(self.cores, 1.0, self.fmax(), self.fmax()) + self.power.mem_w
            + self.power.net_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a9_matches_table5() {
        let a9 = NodeSpec::cortex_a9();
        assert_eq!(a9.cores, 4);
        assert_eq!(a9.frequencies.len(), 5, "footnote 4: 5 ARM DVFS levels");
        assert_eq!(a9.fmin(), 0.2e9);
        assert_eq!(a9.fmax(), 1.4e9);
        assert_eq!(a9.l1d_per_core, 32 * 1024);
        assert_eq!(a9.l2_total, 1024 * 1024);
        assert_eq!(a9.l3_total, 0, "A9 has no L3");
        assert_eq!(a9.memory, 1 << 30);
    }

    #[test]
    fn k10_matches_table5() {
        let k10 = NodeSpec::opteron_k10();
        assert_eq!(k10.cores, 6);
        assert_eq!(k10.frequencies.len(), 3, "footnote 4: 3 AMD DVFS levels");
        assert_eq!(k10.fmin(), 0.8e9);
        assert_eq!(k10.fmax(), 2.1e9);
        assert_eq!(k10.l3_total, 6 << 20);
        assert_eq!(k10.memory, 8u64 << 30);
    }

    #[test]
    fn nameplate_powers_bracket_paper_quotes() {
        // Paper: A9 peak "only 5 W", K10 "about 60 W".
        let a9 = NodeSpec::cortex_a9().nameplate_peak_w();
        assert!(a9 > 2.5 && a9 < 5.5, "A9 nameplate {a9} W");
        let k10 = NodeSpec::opteron_k10().nameplate_peak_w();
        assert!(k10 > 55.0 && k10 < 85.0, "K10 nameplate {k10} W");
    }

    #[test]
    fn idle_powers_match_section_iii_b() {
        // "idle power of A9 (≈1.8 W) is at least 25 times lower than K10 (≈45 W)"
        let a9 = NodeSpec::cortex_a9();
        let k10 = NodeSpec::opteron_k10();
        assert_eq!(a9.power.sys_idle_w, 1.8);
        assert_eq!(k10.power.sys_idle_w, 45.0);
        assert!(k10.power.sys_idle_w / a9.power.sys_idle_w >= 25.0);
    }

    #[test]
    fn small_node_specs_are_wimpy_and_valid() {
        for spec in [NodeSpec::raspberry_pi4(), NodeSpec::orange_pi5()] {
            assert!(spec.validate_operating_point(spec.cores, spec.fmax()).is_ok());
            let nameplate = spec.nameplate_peak_w();
            assert!(
                nameplate > spec.power.sys_idle_w && nameplate < 15.0,
                "{}: nameplate {nameplate} W",
                spec.name
            );
        }
        // DALEK premise: board idle far below the brawny node's.
        assert!(NodeSpec::raspberry_pi4().power.sys_idle_w < 3.0);
        assert!(NodeSpec::orange_pi5().power.sys_idle_w < 5.0);
    }

    #[test]
    fn operating_point_validation() {
        let a9 = NodeSpec::cortex_a9();
        assert!(a9.validate_operating_point(4, 1.4e9).is_ok());
        assert!(a9.validate_operating_point(1, 0.2e9).is_ok());
        assert!(a9.validate_operating_point(5, 1.4e9).is_err());
        assert!(a9.validate_operating_point(0, 1.4e9).is_err());
        assert!(a9.validate_operating_point(4, 1.3e9).is_err());
    }

    #[test]
    fn io_bandwidth_asymmetry() {
        // Table 5: A9 100 Mbps vs K10 1 Gbps.
        let a9 = NodeSpec::cortex_a9();
        let k10 = NodeSpec::opteron_k10();
        assert!((k10.net_bandwidth / a9.net_bandwidth - 10.0).abs() < 1e-9);
    }
}

impl NodeSpec {
    /// Build a validated custom node type (for users modeling their own
    /// hardware alongside the built-ins).
    ///
    /// # Panics
    /// Panics on empty/unsorted frequency lists, zero cores, or
    /// non-positive bandwidths.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &'static str,
        isa: &'static str,
        cores: u32,
        frequencies: Vec<f64>,
        mem_bandwidth: f64,
        net_bandwidth: f64,
        power: PowerSpec,
    ) -> Self {
        assert!(cores >= 1, "a node needs at least one core");
        assert!(!frequencies.is_empty(), "at least one DVFS level required");
        assert!(
            frequencies.windows(2).all(|w| w[0] < w[1]),
            "frequencies must be strictly ascending"
        );
        assert!(frequencies[0] > 0.0, "frequencies must be positive");
        assert!(mem_bandwidth > 0.0 && net_bandwidth > 0.0);
        assert!(power.sys_idle_w >= 0.0 && power.core_act_w > 0.0);
        NodeSpec {
            name,
            isa,
            cores,
            frequencies,
            l1d_per_core: 32 << 10,
            l2_total: 1 << 20,
            l3_total: 0,
            memory: 4u64 << 30,
            mem_bandwidth,
            net_bandwidth,
            power,
        }
    }
}

#[cfg(test)]
mod custom_tests {
    use super::*;

    #[test]
    fn custom_node_is_usable_end_to_end() {
        let spec = NodeSpec::custom(
            "RISCV64",
            "rv64gc",
            8,
            vec![0.8e9, 1.2e9, 1.6e9],
            4.0e9,
            1.25e8,
            PowerSpec {
                sys_idle_w: 2.5,
                core_act_w: 0.6,
                core_stall_w: 0.2,
                mem_w: 0.4,
                net_w: 0.3,
                freq_exp: 2.0,
            },
        );
        assert!(spec.validate_operating_point(8, 1.6e9).is_ok());
        let sim = crate::NodeSim::new(spec.clone());
        let work = crate::NodeWork {
            act_cycles: 8.0 * 1.6e9,
            ..Default::default()
        };
        let run = sim.run(&work, 8, 1.6e9, &crate::Frictions::default(), 0);
        assert!((run.duration - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_frequencies_rejected() {
        let _ = NodeSpec::custom(
            "bad",
            "x",
            1,
            vec![2.0e9, 1.0e9],
            1.0e9,
            1.0e8,
            NodeSpec::cortex_a9().power,
        );
    }
}
