//! Deterministic, seeded noise sources modeling OS scheduling jitter and
//! power-meter measurement noise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded multiplicative-jitter source.
///
/// Draws standard normal variates via Box–Muller and returns factors
/// `max(1 + σ·z, floor)` so simulated durations and measured powers wobble
/// realistically but never go non-positive.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: SmallRng,
    spare: Option<f64>,
}

impl Jitter {
    /// New jitter stream from a seed.
    pub fn new(seed: u64) -> Self {
        Jitter {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// One standard normal variate (Box–Muller, with spare caching).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Multiplicative factor `max(1 + σ·z, 0.05)`.
    pub fn factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        (1.0 + sigma * self.standard_normal()).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_exact() {
        let mut j = Jitter::new(1);
        for _ in 0..100 {
            assert_eq!(j.factor(0.0), 1.0);
        }
    }

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = Jitter::new(42);
        let mut b = Jitter::new(42);
        for _ in 0..50 {
            assert_eq!(a.factor(0.1), b.factor(0.1));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut j = Jitter::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = j.standard_normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn factors_stay_positive() {
        let mut j = Jitter::new(3);
        for _ in 0..10_000 {
            assert!(j.factor(0.5) > 0.0);
        }
    }
}
