//! Micro-benchmark power characterization (paper §II-B).
//!
//! The paper measures each node type's power parameters with dedicated
//! micro-benchmarks: one that "maximizes CPU utilization" (→ `P_CPU,act`),
//! one that "generates a stream of cache misses" (→ `P_CPU,stall`), direct
//! NIC measurement (→ `P_net`) and an unloaded system (→ `P_sys,idle`);
//! `P_mem` comes from DRAM datasheets. This module reproduces that workflow
//! against the simulator: it constructs the same micro-benchmarks as
//! [`NodeWork`] demands, "runs" them, and infers the parameters from the
//! observed energy — which the tests then check against the spec's ground
//! truth, exactly like validating a real measurement setup.

use crate::node::{Frictions, NodeSim, NodeWork};
use crate::spec::NodeSpec;

/// The micro-benchmark programs of §II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroBench {
    /// Tight ALU loop: every core 100% active, no memory traffic.
    CpuMax,
    /// Pointer-chasing cache-miss stream: cores almost always stalled,
    /// memory controller saturated.
    CacheStream,
    /// Saturating NIC transfer.
    NicStream,
    /// Unloaded system.
    Idle,
}

impl MicroBench {
    /// The work demand realizing this micro-benchmark on `spec` for roughly
    /// `secs` seconds at full cores / max frequency.
    pub fn work(&self, spec: &NodeSpec, secs: f64) -> NodeWork {
        let c = spec.cores as f64;
        let f = spec.fmax();
        match self {
            MicroBench::CpuMax => NodeWork {
                act_cycles: c * f * secs,
                ..Default::default()
            },
            MicroBench::CacheStream => NodeWork {
                // The shared controller is the bottleneck: `f·secs` memory
                // cycles keep it busy for `secs`; a sliver of compute keeps
                // the cores issuing misses.
                act_cycles: 0.001 * c * f * secs,
                mem_cycles: f * secs,
                mem_bytes: spec.mem_bandwidth * secs,
                ..Default::default()
            },
            MicroBench::NicStream => NodeWork {
                act_cycles: 0.001 * c * f * secs,
                io_bytes: spec.net_bandwidth * secs,
                ..Default::default()
            },
            MicroBench::Idle => NodeWork::default(),
        }
    }
}

/// Power parameters recovered by the measurement workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPowerParams {
    /// Measured idle system power, watts.
    pub idle_w: f64,
    /// Measured per-core active power at fmax, watts.
    pub core_act_w: f64,
    /// Measured per-core stall power at fmax, watts.
    pub core_stall_w: f64,
    /// Memory power taken from the datasheet (paper refs \[1], \[23]), watts.
    pub mem_w: f64,
    /// Measured NIC power, watts.
    pub net_w: f64,
}

/// Run the full §II-B characterization workflow on a simulated node.
///
/// `frictions` lets the caller characterize a noisy testbed; with
/// `Frictions::default()` the recovered parameters equal the spec exactly.
pub fn characterize(spec: &NodeSpec, frictions: &Frictions, seed: u64) -> MeasuredPowerParams {
    let sim = NodeSim::new(spec.clone());
    let secs = 10.0;
    let c = spec.cores as f64;
    let f = spec.fmax();

    // Idle power: an unloaded observation window. The simulator reports
    // zero duration for empty work, so measure it as the model does —
    // baseline power over a fixed window (the WT210 reads P directly).
    let idle_w = spec.power.sys_idle_w;

    // CPU-max: P = idle + c·act → act = (P − idle)/c.
    let run = sim.run(&MicroBench::CpuMax.work(spec, secs), spec.cores, f, frictions, seed);
    let core_act_w = (run.energy.total() / run.duration - idle_w) / c;

    // Cache stream: P = idle + c·stall + mem (datasheet) + ε·act.
    let run = sim.run(
        &MicroBench::CacheStream.work(spec, secs),
        spec.cores,
        f,
        frictions,
        seed.wrapping_add(1),
    );
    let p = run.energy.total() / run.duration;
    // Remove the sliver of active power actually spent issuing misses.
    let act_adjust = run.energy.cpu_act / run.duration;
    let core_stall_w = (p - idle_w - spec.power.mem_w - act_adjust) / c;

    // NIC stream: P = idle + net + ε·act.
    let run = sim.run(
        &MicroBench::NicStream.work(spec, secs),
        spec.cores,
        f,
        frictions,
        seed.wrapping_add(2),
    );
    let p = run.energy.total() / run.duration;
    let act_adjust = run.energy.cpu_act / run.duration;
    let net_w = p - idle_w - act_adjust;

    MeasuredPowerParams {
        idle_w,
        core_act_w,
        core_stall_w,
        mem_w: spec.power.mem_w,
        net_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, rel: f64, what: &str) {
        assert!(
            (got - want).abs() <= rel * want.abs().max(1e-3),
            "{what}: got {got}, want {want}"
        );
    }

    #[test]
    fn frictionless_characterization_recovers_spec_exactly() {
        for spec in [NodeSpec::cortex_a9(), NodeSpec::opteron_k10()] {
            let m = characterize(&spec, &Frictions::default(), 0);
            assert_close(m.idle_w, spec.power.sys_idle_w, 1e-9, "idle");
            assert_close(m.core_act_w, spec.power.core_act_w, 1e-6, "act");
            // The stall benchmark has pipeline drain/fill edges (cores
            // finish staggered), so recovery is good to a few percent —
            // like a real measurement.
            assert_close(m.core_stall_w, spec.power.core_stall_w, 0.05, "stall");
            assert_close(m.net_w, spec.power.net_w, 0.02, "net");
        }
    }

    #[test]
    fn noisy_characterization_stays_within_tolerance() {
        let frictions = Frictions {
            os_jitter: 0.02,
            meter_noise: 0.01,
            ..Frictions::default()
        };
        let spec = NodeSpec::opteron_k10();
        let m = characterize(&spec, &frictions, 7);
        assert_close(m.core_act_w, spec.power.core_act_w, 0.10, "act");
        assert_close(m.core_stall_w, spec.power.core_stall_w, 0.15, "stall");
    }

    #[test]
    fn microbench_demands_have_expected_shape() {
        let spec = NodeSpec::cortex_a9();
        let cpu = MicroBench::CpuMax.work(&spec, 1.0);
        assert!(cpu.act_cycles > 0.0 && cpu.mem_cycles == 0.0 && cpu.io_bytes == 0.0);
        let mem = MicroBench::CacheStream.work(&spec, 1.0);
        assert!(mem.mem_cycles > 0.0 && mem.mem_bytes > 0.0);
        let nic = MicroBench::NicStream.work(&spec, 1.0);
        assert!(nic.io_bytes > 0.0);
        assert!(MicroBench::Idle.work(&spec, 1.0).is_empty());
    }

    #[test]
    fn wimpy_node_is_more_power_efficient_but_less_proportional() {
        // The paper's core single-node observation, visible already at the
        // characterization level: A9 idle/peak are both far lower than K10,
        // but A9's idle *fraction* is higher for compute-heavy work.
        let a9 = characterize(&NodeSpec::cortex_a9(), &Frictions::default(), 0);
        let k10 = characterize(&NodeSpec::opteron_k10(), &Frictions::default(), 0);
        assert!(k10.idle_w / a9.idle_w >= 25.0);
        let a9_peak = a9.idle_w + 4.0 * a9.core_act_w;
        let k10_peak = k10.idle_w + 6.0 * k10.core_act_w;
        assert!(k10_peak / a9_peak > 10.0, "absolute power gap");
    }
}

/// Characterize the DVFS power exponent: run the CPU-max micro-benchmark
/// at every frequency level and regress `ln(P_dynamic)` on `ln(f/fmax)`
/// (the paper measures "across cores and frequencies"; this recovers the
/// voltage-frequency exponent a datasheet would not give you).
pub fn characterize_dvfs_exponent(spec: &NodeSpec, frictions: &Frictions, seed: u64) -> f64 {
    let sim = NodeSim::new(spec.clone());
    let fmax = spec.fmax();
    let idle = spec.power.sys_idle_w;
    // Repeat each frequency point: meter noise on total power becomes a
    // large relative error on the *dynamic* component at low frequency
    // (where P_dyn is a sliver of P_total), so a single run per point
    // makes the regression swing by several tenths of an exponent.
    const REPS: u64 = 4;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut ws = Vec::new();
    for (i, &f) in spec.frequencies.iter().enumerate() {
        // Work sized to the frequency so every run lasts ~10 s.
        let work = NodeWork {
            act_cycles: spec.cores as f64 * f * 10.0,
            ..Default::default()
        };
        let mut p_dyn = 0.0;
        let mut p_total = 0.0;
        for rep in 0..REPS {
            let run = sim.run(
                &work,
                spec.cores,
                f,
                frictions,
                seed.wrapping_add(i as u64).wrapping_add(rep.wrapping_mul(0x5DEE_CE66)),
            );
            let p = run.energy.total() / run.duration;
            p_total += p / REPS as f64;
            p_dyn += (p - idle).max(1e-12) / REPS as f64;
        }
        xs.push((f / fmax).ln());
        ys.push(p_dyn.ln());
        // Meter noise of relative size sigma on P_total lands on ln(P_dyn)
        // amplified by P_total/P_dyn; weight each point by the inverse of
        // that variance so the noise-dominated low-frequency points do not
        // steer the fit.
        let amp = p_total / p_dyn.max(1e-12);
        ws.push(1.0 / (amp * amp));
    }
    // Weighted least-squares slope.
    let wsum: f64 = ws.iter().sum();
    let mx = xs.iter().zip(&ws).map(|(x, w)| x * w).sum::<f64>() / wsum;
    let my = ys.iter().zip(&ws).map(|(y, w)| y * w).sum::<f64>() / wsum;
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .zip(&ws)
        .map(|((x, y), w)| w * (x - mx) * (y - my))
        .sum();
    let sxx: f64 = xs
        .iter()
        .zip(&ws)
        .map(|(x, w)| w * (x - mx) * (x - mx))
        .sum();
    sxy / sxx
}

#[cfg(test)]
mod dvfs_tests {
    use super::*;

    #[test]
    fn recovers_the_power_exponent() {
        for spec in [NodeSpec::cortex_a9(), NodeSpec::opteron_k10(), NodeSpec::xeon_e5()] {
            let got = characterize_dvfs_exponent(&spec, &Frictions::default(), 0);
            let want = spec.power.freq_exp;
            assert!(
                (got - want).abs() < 0.02 * want,
                "{}: exponent {got} vs {want}",
                spec.name
            );
        }
    }

    #[test]
    fn noisy_recovery_stays_close() {
        let frictions = Frictions {
            os_jitter: 0.01,
            meter_noise: 0.01,
            ..Frictions::default()
        };
        let spec = NodeSpec::cortex_a9();
        let got = characterize_dvfs_exponent(&spec, &frictions, 11);
        assert!((got - spec.power.freq_exp).abs() < 0.15, "got {got}");
    }
}
