//! Component power model and energy accounting (paper Table 1 power
//! parameters and Table 2 energy equations).

/// Per-component power parameters of a node type.
///
/// `core_act_w`/`core_stall_w` are per-core at the node's maximum frequency;
/// DVFS scales them by `(f/fmax)^freq_exp` (voltage tracks frequency, so the
/// exponent is near 2 for the voltage-frequency ladders of these parts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// Whole-system idle power (`P_sys,idle`), watts.
    pub sys_idle_w: f64,
    /// Per-core power while retiring work cycles (`P_CPU,act`) at fmax, watts.
    pub core_act_w: f64,
    /// Per-core power while stalled on memory (`P_CPU,stall`) at fmax, watts.
    pub core_stall_w: f64,
    /// Memory subsystem active power (`P_mem`), watts.
    pub mem_w: f64,
    /// NIC active power (`P_net`), watts.
    pub net_w: f64,
    /// DVFS power exponent: dynamic power ∝ `(f/fmax)^freq_exp`.
    pub freq_exp: f64,
}

impl PowerSpec {
    /// DVFS scaling factor for dynamic core power at frequency `f` given
    /// the node's `fmax`.
    pub fn dvfs_scale(&self, f: f64, fmax: f64) -> f64 {
        (f / fmax).powf(self.freq_exp)
    }

    /// Per-core active power at frequency `f`, watts.
    pub fn core_act_at(&self, f: f64, fmax: f64) -> f64 {
        self.core_act_w * self.dvfs_scale(f, fmax)
    }

    /// Per-core stall power at frequency `f`, watts.
    pub fn core_stall_at(&self, f: f64, fmax: f64) -> f64 {
        self.core_stall_w * self.dvfs_scale(f, fmax)
    }

    /// System power with `cores` cores busy, a fraction `act_frac` of their
    /// time in active (vs stalled) cycles, at frequency `f` — excluding
    /// memory and NIC component power.
    pub fn busy_power(&self, cores: u32, act_frac: f64, f: f64, fmax: f64) -> f64 {
        let act = self.core_act_at(f, fmax);
        let stall = self.core_stall_at(f, fmax);
        self.sys_idle_w + cores as f64 * (act_frac * act + (1.0 - act_frac) * stall)
    }
}

/// Energy consumed by one simulated run, split by component
/// (the `E_CPU,act / E_CPU,stall / E_mem / E_net / E_idle` terms of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy of active CPU cycles, joules.
    pub cpu_act: f64,
    /// Energy of stalled CPU cycles, joules.
    pub cpu_stall: f64,
    /// Memory subsystem energy, joules.
    pub mem: f64,
    /// Network subsystem energy, joules.
    pub net: f64,
    /// Idle (baseline) energy over the whole duration, joules.
    pub idle: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total(&self) -> f64 {
        self.cpu_act + self.cpu_stall + self.mem + self.net + self.idle
    }

    /// Scale every component (measurement-noise application).
    pub fn scaled(&self, k: f64) -> Self {
        EnergyBreakdown {
            cpu_act: self.cpu_act * k,
            cpu_stall: self.cpu_stall * k,
            mem: self.mem * k,
            net: self.net * k,
            idle: self.idle * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PowerSpec {
        PowerSpec {
            sys_idle_w: 10.0,
            core_act_w: 2.0,
            core_stall_w: 1.0,
            mem_w: 0.5,
            net_w: 0.25,
            freq_exp: 2.0,
        }
    }

    #[test]
    fn dvfs_scaling_quadratic() {
        let p = spec();
        assert!((p.dvfs_scale(1.0e9, 2.0e9) - 0.25).abs() < 1e-12);
        assert!((p.core_act_at(1.0e9, 2.0e9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_power_composition() {
        let p = spec();
        // 4 cores fully active at fmax: 10 + 4·2 = 18 W.
        assert!((p.busy_power(4, 1.0, 2.0e9, 2.0e9) - 18.0).abs() < 1e-12);
        // fully stalled: 10 + 4·1 = 14 W.
        assert!((p.busy_power(4, 0.0, 2.0e9, 2.0e9) - 14.0).abs() < 1e-12);
        // 50/50 mix: 16 W.
        assert!((p.busy_power(4, 0.5, 2.0e9, 2.0e9) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn energy_breakdown_total_and_scale() {
        let e = EnergyBreakdown {
            cpu_act: 5.0,
            cpu_stall: 1.0,
            mem: 0.5,
            net: 0.25,
            idle: 10.0,
        };
        assert!((e.total() - 16.75).abs() < 1e-12);
        let s = e.scaled(2.0);
        assert!((s.total() - 33.5).abs() < 1e-12);
    }

    #[test]
    fn stall_power_below_active_power() {
        for s in [
            crate::NodeSpec::cortex_a9(),
            crate::NodeSpec::opteron_k10(),
            crate::NodeSpec::cortex_a15(),
            crate::NodeSpec::xeon_e5(),
        ] {
            assert!(
                s.power.core_stall_w < s.power.core_act_w,
                "{}: stalled cores draw less than active cores",
                s.name
            );
        }
    }
}
