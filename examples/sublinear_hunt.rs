//! Hunting sub-linear configurations (paper §III-D/E): walk the paper's
//! Pareto mixes, classify each against the reference ideal line, and price
//! the sub-linear ones in 95th-percentile response time.
//!
//! The punchline this reproduces: for workloads where wimpy nodes have the
//! better PPR (EP), going sub-linear is nearly free; where brawny nodes
//! win (x264), it costs seconds.
//!
//! ```sh
//! cargo run --example sublinear_hunt
//! ```

use enprop::prelude::*;

fn main() {
    let grid = GridSpec::new(200);
    let mixes = [(32u32, 12u32), (25, 10), (25, 8), (25, 7), (25, 5)];

    for name in ["EP", "x264"] {
        let workload = catalog::by_name(name).expect("workload is in the catalog");
        let reference = ClusterModel::new(workload.clone(), ClusterSpec::a9_k10(32, 12));
        let ref_peak = reference.busy_power_w();
        println!("=== {name}: classified against the 32 A9 : 12 K10 ideal line ===");

        for (a9, k10) in mixes {
            let cluster = ClusterSpec::a9_k10(a9, k10);
            let report = sublinear_report(&workload, &cluster, ref_peak, grid);
            let cross = report
                .crossovers
                .first()
                .map(|x| format!("goes sub-linear at u = {:.0}%", x * 100.0))
                .unwrap_or_else(|| "never crosses the ideal".into());
            let model = ClusterModel::new(workload.clone(), cluster);
            println!(
                "  {:>14}  peak {:>5.1}% of ref | {:?}: {cross} | p95@70%: {:.3} s",
                report.label,
                report.peak_pct_of_reference,
                report.linearity,
                model.p95_response_time(0.7),
            );
        }

        // The absolute latency cost of the deepest cut.
        let full = ClusterModel::new(workload.clone(), ClusterSpec::a9_k10(32, 12));
        let cut = ClusterModel::new(workload.clone(), ClusterSpec::a9_k10(25, 5));
        let gap = cut.p95_response_time(0.7) - full.p95_response_time(0.7);
        println!(
            "  removing 7 K10s + 7 A9s costs {:.3} s of p95 at 70% load\n",
            gap
        );
    }
    println!(
        "EP pays milliseconds, x264 pays seconds — heterogeneity scales the\n\
         proportionality wall cheaply only when the wimpy nodes' PPR wins (§III-E)."
    );
}
