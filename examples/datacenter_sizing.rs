//! Datacenter sizing: given a time deadline and a power budget, search the
//! heterogeneous configuration space for the cheapest-energy cluster — the
//! paper intro's motivating problem ("for a given application with a time
//! deadline and energy budget, it is non-trivial to determine an
//! energy-proportional configuration among the large system configuration
//! space").
//!
//! ```sh
//! cargo run --release --example datacenter_sizing
//! ```

use enprop::explore::knee_point;
use enprop::prelude::*;

fn main() {
    let budget_w = 1000.0;
    // Provision for a fleet of up to 32 wimpy + 12 brawny nodes.
    let types = [TypeSpace::a9(32), TypeSpace::k10(12)];
    println!(
        "configuration space : {} configurations",
        count_configurations(&types)
    );

    for workload_name in ["EP", "x264", "blackscholes"] {
        let workload = catalog::by_name(workload_name).expect("workload is in the catalog");
        println!("\n=== {workload_name} (unit: {}) ===", workload.unit);

        // Evaluate the whole space in parallel and keep what the budget allows.
        let evald: Vec<_> = evaluate_space(&workload, enumerate_configurations(&types))
            .into_iter()
            .filter(|e| e.nameplate_w <= budget_w)
            .collect();
        let front = pareto_front(&evald);
        println!(
            "within {budget_w} W budget: {} configs, {} on the energy-deadline Pareto frontier",
            evald.len(),
            front.len()
        );

        // A deadline of 2x the fastest feasible configuration.
        let fastest = front.first().expect("nonempty frontier").job_time;
        let deadline = 2.0 * fastest;
        let best = sweet_spot(&evald, deadline).expect("feasible deadline");
        println!("deadline {:.3} s -> sweet spot:", deadline);
        println!("  configuration : {}", best.cluster.label());
        for g in best.cluster.groups.iter().filter(|g| g.count > 0) {
            println!(
                "    {:>4} x {:<4} {} cores @ {:.2} GHz",
                g.count,
                g.spec.name,
                g.cores,
                g.freq / 1e9
            );
        }
        println!(
            "  job time {:.3} s | job energy {:.1} J | nameplate {:.0} W",
            best.job_time, best.job_energy, best.nameplate_w
        );

        // How much energy does the deadline cost? Compare with the
        // unconstrained minimum-energy configuration.
        let cheapest = sweet_spot(&evald, f64::INFINITY).expect("sweep is non-empty");
        println!(
            "  unconstrained minimum energy: {:.1} J at {:.3} s ({})",
            cheapest.job_energy,
            cheapest.job_time,
            cheapest.cluster.label()
        );

        // No deadline at all? The frontier's knee balances both axes.
        if let Some(knee) = knee_point(&front) {
            println!(
                "  frontier knee (no-deadline recommendation): {} at {:.3} s / {:.1} J",
                knee.cluster.label(),
                knee.job_time,
                knee.job_energy
            );
        }
    }
}
