//! Quickstart: model a heterogeneous cluster, read off its energy
//! proportionality, and check the latency cost of a greener configuration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use enprop::prelude::*;

fn main() {
    // 1. Pick a workload from the paper's catalog (demands calibrated from
    //    the published measurements).
    let workload = catalog::by_name("EP").expect("catalog workload");

    // 2. Describe a cluster: 32 wimpy ARM A9 nodes + 12 brawny AMD K10s.
    let cluster = ClusterSpec::a9_k10(32, 12);

    // 3. The analytic time-energy model (paper Table 2).
    let model = ClusterModel::new(workload.clone(), cluster);
    println!("cluster            : {}", model.cluster().label());
    println!("job service time   : {:.1} ms", model.job_time() * 1e3);
    println!("job energy         : {:.1} J", model.job_energy());
    println!("busy power         : {:.0} W", model.busy_power_w());
    println!("idle power         : {:.0} W", model.idle_power_w());

    // 4. Energy-proportionality metrics (paper Table 3).
    let m = model.metrics();
    println!("\nproportionality    : DPR {:.1}%  IPR {:.2}  EPM {:.2}", m.dpr, m.ipr, m.epm);

    // 5. Tail latency under the M/D/1 dispatcher model (paper §II-B).
    for u in [0.3, 0.5, 0.8] {
        println!(
            "p95 response @ {:>3.0}% load : {:.1} ms",
            u * 100.0,
            model.p95_response_time(u) * 1e3
        );
    }

    // 6. Trade brawny nodes for energy: the (25 A9, 7 K10) mix is
    //    sub-linearly proportional (below the ideal line) at 50% load.
    let greener = ClusterModel::new(workload, ClusterSpec::a9_k10(25, 7));
    let ref_peak = model.busy_power_w();
    let pct = 100.0 * greener.power_at(0.5) / ref_peak;
    println!(
        "\n(25 A9, 7 K10) at 50% load draws {pct:.1}% of the reference peak \
         (ideal would be 50%) — sub-linear!"
    );
    println!(
        "latency cost: p95 {:.1} ms vs {:.1} ms",
        greener.p95_response_time(0.5) * 1e3,
        model.p95_response_time(0.5) * 1e3
    );
}
