//! Workload characterization on the machine you are sitting at: run the
//! six real kernels (Monte-Carlo EP, KV store, SAD motion estimation,
//! Black-Scholes, GMM/Viterbi, RSA-2048 verify), measure throughput, and
//! derive per-op cycle demands — the paper's `perf`-based methodology with
//! your laptop standing in for the testbed.
//!
//! ```sh
//! cargo run --release --example characterize_host
//! ```

use enprop::workloads::characterize::{measure, Kernel, ALL_KERNELS};
use enprop::workloads::kernels;

fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::Ep => "EP",
        Kernel::Memcached => "memcached",
        Kernel::X264 => "x264",
        Kernel::Blackscholes => "blackscholes",
        Kernel::Julius => "Julius",
        Kernel::Rsa2048 => "RSA-2048",
    }
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host characterization on {threads} hardware threads\n");
    println!(
        "{:<14} {:>14} {:>9} {:>16}   cycles/op @3GHz",
        "kernel", "ops", "seconds", "ops/s"
    );
    for k in ALL_KERNELS {
        let m = measure(k, 0.2);
        let demand = m.to_demand(threads, 3.0e9);
        println!(
            "{:<14} {:>14} {:>9.3} {:>16.0} {:>16.0}",
            kernel_name(k),
            m.ops,
            m.seconds,
            m.ops_per_sec,
            demand.cycles_per_op
        );
    }

    // The kernels are real programs — show one actual result from each
    // domain to prove nothing is stubbed.
    println!("\nspot checks:");
    let price = kernels::blackscholes::price(&kernels::blackscholes::Option {
        spot: 100.0,
        strike: 100.0,
        rate: 0.05,
        volatility: 0.2,
        expiry: 1.0,
        is_call: true,
    });
    println!("  blackscholes: ATM call = {price:.4} (Hull's textbook 10.4506)");

    let reference = kernels::x264::Frame::synthetic(128, 64, 9);
    let current = reference.shifted(3, -2);
    let mv = kernels::x264::motion_estimate(&current, &reference, 6, true)[9];
    println!("  x264: recovered motion vector ({}, {}) for a (3, -2) shift", mv.dx, mv.dy);

    let ep = kernels::ep::run_sequential(100_000, 271_828_183);
    let accept: u64 = ep.annuli.iter().sum();
    println!(
        "  EP: acceptance rate {:.4} (pi/4 = {:.4})",
        accept as f64 / ep.pairs as f64,
        std::f64::consts::FRAC_PI_4
    );
}
