//! A web-serving scenario end to end: a memcached tier under a latency
//! SLO, sized across heterogeneous mixes, cross-checked by discrete-event
//! simulation.
//!
//! Shows both faces of the library: the *analytic* M/D/1 model (instant)
//! and the *simulated* dispatcher over simulated nodes (the validation
//! path) agreeing on tail latency.
//!
//! ```sh
//! cargo run --release --example memcached_latency
//! ```

use enprop::clustersim::{ClusterQueueSim, ClusterSim, ClusterSpec};
use enprop::prelude::*;

fn main() {
    let workload = catalog::by_name("memcached").expect("memcached is in the catalog");
    let slo_p95 = 0.250; // seconds
    let load = 0.7;

    println!("memcached tier sizing: p95 SLO {:.0} ms at {:.0}% load\n", slo_p95 * 1e3, load * 100.0);
    println!(
        "{:>16} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "mix", "T_job [ms]", "busy [W]", "p95 model [ms]", "p95 sim [ms]", "SLO"
    );

    for (a9, k10) in [(0u32, 16u32), (32, 12), (64, 8), (96, 4), (128, 0)] {
        let cluster = ClusterSpec::a9_k10(a9, k10);
        let model = ClusterModel::new(workload.clone(), cluster.clone());
        let p95_model = model.p95_response_time(load);

        // Cross-check with the discrete-event dispatcher over simulated
        // service times (includes OS jitter and protocol overheads).
        let sim = ClusterSim::new(&workload, &cluster);
        let queue = ClusterQueueSim::new(&sim, 12, 42).expect("non-empty pool");
        let res = queue.run(load, 20_000, 2_000, 7).expect("stable load");
        let p95_sim = res.quantile(0.95).expect("simulation produced samples");

        println!(
            "{:>16} {:>12.1} {:>12.0} {:>14.1} {:>14.1} {:>8}",
            cluster.label(),
            model.job_time() * 1e3,
            model.busy_power_w(),
            p95_model * 1e3,
            p95_sim * 1e3,
            if p95_sim <= slo_p95 { "ok" } else { "MISS" }
        );
    }

    println!(
        "\nNote the wimpy-heavy mixes serve memcached within the SLO at a fraction\n\
         of the idle power — Table 7's memcached row is the one where the A9 is\n\
         *more* proportional than the K10, and Table 6 gives it ~19x the PPR."
    );
}
