//! A diurnal datacenter: 24 hours of sinusoidal load served three ways —
//! a static brawny-heavy cluster, a static wimpy-heavy cluster, and the
//! dynamic shed-brawny-first envelope (this repository's extension of the
//! paper's static analysis).
//!
//! Prints hour-by-hour power and the daily energy bill of each strategy.
//!
//! ```sh
//! cargo run --release --example diurnal_datacenter
//! ```

use enprop::explore::DynamicEnvelope;
use enprop::prelude::*;

/// Diurnal load: ~15% overnight, peaking ~90% late afternoon.
fn load_at_hour(h: f64) -> f64 {
    let phase = (h - 15.0) / 24.0 * std::f64::consts::TAU;
    (0.525 + 0.375 * phase.cos()).clamp(0.0, 1.0)
}

fn main() {
    let workload = catalog::by_name("memcached").expect("memcached is in the catalog");

    let full = ClusterModel::new(workload.clone(), ClusterSpec::a9_k10(32, 12));
    let wimpy = ClusterModel::new(workload.clone(), ClusterSpec::a9_k10(128, 0));
    let envelope = DynamicEnvelope::shed_brawny_ladder(&workload, 32, 12);

    // Loads are fractions of the full mix's capacity; the wimpy cluster
    // serves the same absolute demand at its own local utilization.
    let ref_thru = full.peak_throughput();
    let wimpy_scale = ref_thru / wimpy.peak_throughput();

    println!("24 h of diurnal memcached traffic (load relative to 32 A9 : 12 K10 capacity)\n");
    println!(
        "{:>4} {:>7} {:>14} {:>14} {:>14}   dynamic rung",
        "hour", "load", "static mix", "static 128A9", "dynamic"
    );

    let (mut e_full, mut e_wimpy, mut e_dyn) = (0.0f64, 0.0f64, 0.0f64);
    for h in 0..24 {
        let u = load_at_hour(h as f64);
        let p_full = full.power_at(u);
        let p_wimpy = wimpy.power_at((u * wimpy_scale).min(1.0));
        let (rung, p_dyn) = envelope.serve(u);
        e_full += p_full * 3600.0;
        e_wimpy += p_wimpy * 3600.0;
        e_dyn += p_dyn * 3600.0;
        if h % 3 == 0 {
            println!(
                "{h:>4} {:>6.0}% {:>12.0} W {:>12.0} W {:>12.0} W   {rung}",
                u * 100.0,
                p_full,
                p_wimpy,
                p_dyn
            );
        }
    }

    let kwh = |j: f64| j / 3.6e6;
    println!("\ndaily energy:");
    println!("  static 32 A9 : 12 K10 : {:>6.2} kWh", kwh(e_full));
    println!(
        "  static 128 A9 : 0 K10 : {:>6.2} kWh ({:+.0}% vs mix)",
        kwh(e_wimpy),
        100.0 * (e_wimpy - e_full) / e_full
    );
    println!(
        "  dynamic envelope      : {:>6.2} kWh ({:+.0}% vs mix)",
        kwh(e_dyn),
        100.0 * (e_dyn - e_full) / e_full
    );

    // Latency sanity check at the evening peak.
    let peak = load_at_hour(15.0);
    println!(
        "\np95 at the {:.0}% peak: static mix {:.0} ms (the dynamic strategy runs the \
         full mix at peak, so peak latency is unchanged)",
        peak * 100.0,
        full.p95_response_time(peak.min(0.95)) * 1e3
    );
}
