//! # enprop
//!
//! A complete Rust reproduction of *"On Energy Proportionality and
//! Time-Energy Performance of Heterogeneous Clusters"* (IEEE CLUSTER
//! 2016): a measurement-driven time-energy model of clusters mixing wimpy
//! (ARM Cortex-A9) and brawny (AMD Opteron K10) nodes, extended with
//! energy-proportionality metrics, plus every substrate the analysis
//! needs — a node/cluster simulator standing in for the paper's physical
//! testbed, M/D/1 queueing, calibrated workload demands with real
//! executable kernels, and configuration-space exploration.
//!
//! This facade crate re-exports the whole workspace; downstream users can
//! depend on `enprop` alone.
//!
//! ```
//! use enprop::prelude::*;
//!
//! // Table 8's middle column: 64 wimpy + 8 brawny nodes running NPB-EP.
//! let model = ClusterModel::new(
//!     catalog::by_name("EP").unwrap(),
//!     ClusterSpec::a9_k10(64, 8),
//! );
//! let metrics = model.metrics();
//! assert!((metrics.dpr - 32.66).abs() < 0.25);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`metrics`] | `enprop-metrics` | DPR, IPR, EPM, LDR, PG(u), PPR(u), power curves |
//! | [`queueing`] | `enprop-queueing` | M/D/1, M/M/1, M/G/1, discrete-event queue |
//! | [`nodesim`] | `enprop-nodesim` | multicore node simulator + power model |
//! | [`workloads`] | `enprop-workloads` | six calibrated workloads + real kernels |
//! | [`clustersim`] | `enprop-clustersim` | cluster DES, dispatcher, validation |
//! | [`core`] | `enprop-core` | the paper's time-energy + proportionality model |
//! | [`explore`] | `enprop-explore` | config space, Pareto frontier, power budget |

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use enprop_clustersim as clustersim;
pub use enprop_core as core;
pub use enprop_explore as explore;
pub use enprop_metrics as metrics;
pub use enprop_nodesim as nodesim;
pub use enprop_queueing as queueing;
pub use enprop_workloads as workloads;

/// The names you need for a typical analysis session.
pub mod prelude {
    pub use enprop_clustersim::{ClusterQueueSim, ClusterSim, ClusterSpec, NodeGroup};
    pub use enprop_core::{
        best_ppr_config, normalized_power_samples, single_node_row, table4, ClusterModel,
    };
    pub use enprop_explore::{
        budget_mixes, count_configurations, enumerate_configurations, evaluate_space,
        pareto_front, response_time_series, sublinear_report, sweet_spot, TypeSpace,
    };
    pub use enprop_metrics::{
        classify_against, GridSpec, LinearCurve, Linearity, PowerCurve, PprCurve,
        ProportionalityMetrics,
    };
    pub use enprop_nodesim::{Frictions, NodeSim, NodeSpec, NodeWork};
    pub use enprop_queueing::{Queue, QueueSim, MD1};
    pub use enprop_workloads::{catalog, SingleNodeModel, Workload};
}
