//! Standard and uniform sampling, algorithm-compatible with rand 0.8.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A sampling distribution over `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8: 53-bit multiply-based conversion.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // rand 0.8 draws low bits first.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: highest bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

/// Marker trait: `T` supports uniform range sampling.
pub trait SampleUniform: Sized {}

/// A range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // rand 0.8 sample_single: widening multiply with rejection
                // zone derived from the range's leading zeros.
                let range = self.end.wrapping_sub(self.start) as $u;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u = wide_draw::<$u, R>(rng);
                    let (hi, lo) = wmul::<$u>(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range = (end.wrapping_sub(start) as $u).wrapping_add(1);
                if range == 0 {
                    // Full domain.
                    return wide_draw::<$u, R>(rng) as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u = wide_draw::<$u, R>(rng);
                    let (hi, lo) = wmul::<$u>(v, range);
                    if lo <= zone {
                        return start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

uniform_int!(u8 as u32, u16 as u32, u32 as u32, i8 as u32, i16 as u32, i32 as u32,
             u64 as u64, i64 as u64, usize as u64, isize as u64, u128 as u128, i128 as u128);

/// Widening multiply helper: high and low halves of `a * b`.
trait WideMul: Copy {
    fn wmul(self, b: Self) -> (Self, Self);
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl WideMul for u32 {
    fn wmul(self, b: Self) -> (Self, Self) {
        let t = self as u64 * b as u64;
        ((t >> 32) as u32, t as u32)
    }
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl WideMul for u64 {
    fn wmul(self, b: Self) -> (Self, Self) {
        let t = self as u128 * b as u128;
        ((t >> 64) as u64, t as u64)
    }
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl WideMul for u128 {
    fn wmul(self, b: Self) -> (Self, Self) {
        // Schoolbook 128×128 → 256-bit multiply from 64-bit halves.
        let (a_hi, a_lo) = (self >> 64, self & u64::MAX as u128);
        let (b_hi, b_lo) = (b >> 64, b & u64::MAX as u128);
        let ll = a_lo * b_lo;
        let lh = a_lo * b_hi;
        let hl = a_hi * b_lo;
        let hh = a_hi * b_hi;
        let mid = (ll >> 64) + (lh & u64::MAX as u128) + (hl & u64::MAX as u128);
        let lo = (mid << 64) | (ll & u64::MAX as u128);
        let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
        (hi, lo)
    }
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

fn wmul<T: WideMul>(a: T, b: T) -> (T, T) {
    a.wmul(b)
}

fn wide_draw<T: WideMul, R: RngCore + ?Sized>(rng: &mut R) -> T {
    T::draw(rng)
}

/// rand 0.8 float sampling: draw a mantissa-uniform value in `[1, 2)`,
/// shift to `[0, 1)`, then scale into the range.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
    value1_2 - 1.0
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
    value1_2 - 1.0
}

macro_rules! uniform_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                $unit(rng) * scale + self.start
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                // rand 0.8 treats inclusive float ranges like half-open
                // ones for single-shot sampling.
                let scale = end - start;
                $unit(rng) * scale + start
            }
        }
    )*};
}

uniform_float!(f64 => unit_f64, f32 => unit_f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..2000 {
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn float_range_uniformity_rough() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(2.0f64..4.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }
}
