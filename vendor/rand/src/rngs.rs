//! Concrete generators. `SmallRng` is the exact xoshiro256++ used by rand
//! 0.8 on 64-bit platforms; `StdRng` aliases the same engine here (the
//! workspace never relies on `StdRng`'s cryptographic properties).

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // All-zero state would be a fixed point; rand's seeding via
        // SplitMix64 never produces it from seed_from_u64, but guard the
        // raw from_seed path.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Stand-in for rand's `StdRng`. Statistically strong enough for
/// simulation; NOT cryptographically secure (documented deviation of this
/// vendored subset).
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn matches_reference_xoshiro256plusplus_vector() {
        // Reference sequence from the xoshiro256++ public-domain C code
        // with state {1, 2, 3, 4}.
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
