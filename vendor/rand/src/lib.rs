//! Offline drop-in subset of `rand` 0.8.
//!
//! The build environment vendors this crate because crates.io is not
//! reachable. It implements the parts of the `rand` API this workspace
//! uses — [`rngs::SmallRng`], [`Rng`], [`SeedableRng`], and uniform range
//! sampling — with the *same algorithms* as rand 0.8 (xoshiro256++ seeded
//! via SplitMix64, 53-bit float conversion, widening-multiply integer
//! ranges), so seeded simulation results are bit-compatible with the real
//! crate.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, SampleRange, SampleUniform, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (the exact
    /// expansion rand 0.8 uses for xoshiro-family generators).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Re-export of the commonly used names (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}
