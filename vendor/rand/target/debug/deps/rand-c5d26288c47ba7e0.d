/root/repo/vendor/rand/target/debug/deps/rand-c5d26288c47ba7e0.d: src/lib.rs src/distributions.rs src/rngs.rs

/root/repo/vendor/rand/target/debug/deps/librand-c5d26288c47ba7e0.rlib: src/lib.rs src/distributions.rs src/rngs.rs

/root/repo/vendor/rand/target/debug/deps/librand-c5d26288c47ba7e0.rmeta: src/lib.rs src/distributions.rs src/rngs.rs

src/lib.rs:
src/distributions.rs:
src/rngs.rs:
