/root/repo/vendor/rand/target/debug/deps/rand-15263d5202b9ab41.d: src/lib.rs src/distributions.rs src/rngs.rs

/root/repo/vendor/rand/target/debug/deps/rand-15263d5202b9ab41: src/lib.rs src/distributions.rs src/rngs.rs

src/lib.rs:
src/distributions.rs:
src/rngs.rs:
