//! Offline drop-in subset of `parking_lot`: `Mutex` and `RwLock` with the
//! guard-returning (non-`Result`) API, backed by `std::sync`. Poisoning is
//! cleared rather than propagated, matching parking_lot's behavior of not
//! poisoning locks.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (parking_lot-style API over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, returning the guard directly (no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (parking_lot-style API over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
