//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a random length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn vec_of_tuples_respects_len_and_bounds() {
        let strat = vec((0u8..3, 0u16..64), 1..20);
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 3);
                assert!(b < 64);
            }
        }
    }
}
