//! Offline drop-in subset of `proptest`.
//!
//! Vendored because the build environment cannot reach crates.io. It
//! supports the surface this workspace uses — the [`proptest!`] macro,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map`/`collection::vec`
//! strategies, `prop_assert*!` and `prop_assume!` — running each property
//! over a deterministic seeded stream of random cases.
//!
//! Deviations from real proptest: no shrinking (failures report the raw
//! case), no persistence files, and the RNG is always deterministic (seeded
//! per test by case index), so failures are exactly reproducible in CI.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Maximum number of discarded cases (`prop_assume!` misses) tolerated
    /// before the property fails as under-sampled.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Error carried out of a failing or discarded test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic case RNG (SplitMix64 → xoshiro256++-lite). Not exposed to
/// user code beyond strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary u64 (SplitMix64 expansion).
    pub fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform u64 below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform u128 below `bound` (> 0).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        // Rejection-free approximation via 128-bit fixed point.
        let lo = self.next_u64() as u128;
        let hi = self.next_u64() as u128;
        let x = (hi << 64) | lo;
        // Split the multiply to avoid 256-bit arithmetic.
        let (b_hi, b_lo) = (bound >> 64, bound & u64::MAX as u128);
        let (x_hi, x_lo) = (x >> 64, x & u64::MAX as u128);
        // (x * bound) >> 128
        let ll = x_lo * b_lo;
        let lh = x_lo * b_hi;
        let hl = x_hi * b_lo;
        let hh = x_hi * b_hi;
        let mid = (ll >> 64) + (lh & u64::MAX as u128) + (hl & u64::MAX as u128);
        hh + (lh >> 64) + (hl >> 64) + (mid >> 64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-draws up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adaptor produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive draws: {}", self.whence);
    }
}

/// Uniform choice among same-typed strategies (built by [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<S>(pub Vec<S>);

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below_u128(width) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if width == 0 {
                    // Full u128 domain.
                    let l = rng.next_u64() as u128;
                    let h = rng.next_u64() as u128;
                    return ((h << 64) | l) as $t;
                }
                lo.wrapping_add(rng.below_u128(width) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        rng.unit_f64() * (self.end - self.start) + self.start
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64() * (self.end() - self.start()) + self.start()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        (rng.unit_f64() as f32) * (self.end - self.start) + self.start
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Everything the `proptest::prelude::*` import is expected to provide.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Run one property over `cases` deterministic random cases. Used by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rejects = 0u32;
    let mut ran = 0u32;
    let mut case_idx = 0u64;
    // Stable per-test seed: hash of the property name.
    let name_seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
    while ran < config.cases {
        let mut rng = TestRng::seed_from_u64(name_seed ^ case_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case_idx += 1;
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "property {name}: too many inputs rejected by prop_assume! \
                         ({rejects} rejects for {ran} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at deterministic case #{case}: {msg}",
                    case = case_idx - 1
                );
            }
        }
    }
}

/// The proptest entry macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with $cfg; $($rest)* }
    };
    (@with $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(
                stringify!($name),
                &config,
                |proptest_rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Fallible assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fallible inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u32..10, b in -5i64..5, x in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        /// prop_map and tuples compose.
        #[test]
        fn map_and_tuples((lo, hi) in (0u32..50, 50u32..100).prop_map(|(a, b)| (a, b + 1))) {
            prop_assert!(lo < hi);
        }

        /// prop_assume discards without failing.
        #[test]
        fn assume_filters(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        /// oneof picks only listed values.
        #[test]
        fn oneof_picks_arms(v in prop_oneof![Just(1u8), Just(2), Just(9)]) {
            prop_assert!(v == 1 || v == 2 || v == 9);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let cfg = crate::ProptestConfig::with_cases(16);
        crate::run_property("p", &cfg, |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        crate::run_property("p", &cfg, |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
