//! Offline drop-in subset of `rayon`, with a **real chunked thread pool**.
//!
//! Vendored because the build environment cannot reach crates.io. The
//! `par_iter`/`into_par_iter` surface this workspace uses executes on
//! std scoped threads: the source iterator is pulled in contiguous chunks
//! under a `parking_lot::Mutex`, each worker runs the adaptor pipeline
//! over its chunk, and chunk outputs are re-assembled in source order.
//!
//! ## Determinism contract (stronger than upstream rayon)
//!
//! Every value-returning consumer (`collect`, `sum`, `reduce`, `min_by`,
//! `count`, …) is **bit-identical to sequential execution for any thread
//! count**: the adaptor closures (`map`/`filter`/`flat_map`) run in
//! parallel, but their outputs are restored to source order before any
//! reduction is applied, and the reduction itself runs sequentially over
//! that ordered stream. Floating-point folds therefore associate exactly
//! as they would under `Iterator::fold` — no tree-shaped reduction ever
//! reorders them. The single exception is [`ParIter::for_each`], whose
//! side effects run concurrently inside the workers (like upstream rayon);
//! callers needing ordered effects should `collect` first.
//!
//! ## Thread-count override
//!
//! Worker count resolves, in order: [`ParIter::with_threads`] (per call) →
//! [`set_num_threads`] (process-wide) → `RAYON_NUM_THREADS` /
//! `ENPROP_THREADS` env vars → `std::thread::available_parallelism()`.
//! A resolved count of 1 takes a pure sequential path (no threads, no
//! locks). Swap back to the real crate by deleting the
//! `[patch.crates-io]` entry (and re-checking float reductions: upstream
//! `reduce`/`sum` are tree-shaped and not bit-stable across runs).

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 means "not set".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide worker count for subsequent parallel iterators
/// (the simplified stand-in for rayon's global `ThreadPoolBuilder`).
/// `0` clears the override.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads a parallel iterator will use: the
/// [`set_num_threads`] override if set, else `RAYON_NUM_THREADS` or
/// `ENPROP_THREADS` from the environment, else the host's available
/// parallelism.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    for var in ["RAYON_NUM_THREADS", "ENPROP_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|s| s.parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Chunk length the pool uses for a source of `items` elements on
/// `threads` workers: ~8 chunks per worker for load balancing, clamped so
/// tiny inputs are not over-split and huge ones are not under-split.
/// Exposed so instrumentation layers can reconstruct the exact chunk
/// boundaries the pool used.
pub fn chunk_len(items: usize, threads: usize) -> usize {
    (items / (threads.max(1) * 8)).clamp(16, 1024)
}

/// One stage of the adaptor pipeline: push-based so `filter`/`flat_map`
/// compose without per-item allocation. `apply` feeds every output of
/// `item` to `emit`, in order.
pub trait ItemOp<T>: Sync {
    /// Output element type of the pipeline up to this stage.
    type Out: Send;
    /// Run the pipeline on one source item.
    fn apply(&self, item: T, emit: &mut dyn FnMut(Self::Out));
}

/// The empty pipeline: source items pass through.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl<T: Send> ItemOp<T> for Identity {
    type Out = T;
    fn apply(&self, item: T, emit: &mut dyn FnMut(T)) {
        emit(item);
    }
}

/// Pipeline stage for [`ParIter::map`].
#[derive(Clone)]
pub struct MapOp<P, F> {
    prev: P,
    f: F,
}

impl<T, P, F, O> ItemOp<T> for MapOp<P, F>
where
    P: ItemOp<T>,
    F: Fn(P::Out) -> O + Sync,
    O: Send,
{
    type Out = O;
    fn apply(&self, item: T, emit: &mut dyn FnMut(O)) {
        self.prev.apply(item, &mut |x| emit((self.f)(x)));
    }
}

/// Pipeline stage for [`ParIter::filter`].
#[derive(Clone)]
pub struct FilterOp<P, F> {
    prev: P,
    f: F,
}

impl<T, P, F> ItemOp<T> for FilterOp<P, F>
where
    P: ItemOp<T>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;
    fn apply(&self, item: T, emit: &mut dyn FnMut(P::Out)) {
        self.prev.apply(item, &mut |x| {
            if (self.f)(&x) {
                emit(x);
            }
        });
    }
}

/// Pipeline stage for [`ParIter::flat_map`].
#[derive(Clone)]
pub struct FlatMapOp<P, F> {
    prev: P,
    f: F,
}

impl<T, P, F, O> ItemOp<T> for FlatMapOp<P, F>
where
    P: ItemOp<T>,
    F: Fn(P::Out) -> O + Sync,
    O: IntoIterator,
    O::Item: Send,
{
    type Out = O::Item;
    fn apply(&self, item: T, emit: &mut dyn FnMut(O::Item)) {
        self.prev.apply(item, &mut |x| {
            for y in (self.f)(x) {
                emit(y);
            }
        });
    }
}

/// A parallel iterator: a source iterator plus an adaptor pipeline,
/// executed on the chunked pool when a consumer is called.
#[derive(Clone)]
pub struct ParIter<I, Op = Identity> {
    base: I,
    op: Op,
    threads: Option<usize>,
}

/// Chunk puller shared by the workers: the source iterator plus the next
/// chunk sequence number, behind one mutex.
struct Source<I> {
    iter: I,
    next_seq: usize,
}

impl<I, Op> ParIter<I, Op>
where
    I: Iterator + Send,
    I::Item: Send,
    Op: ItemOp<I::Item>,
{
    /// Pin this iterator to at most `n` workers (`0` = use the global
    /// resolution order). Extension over upstream rayon so tests and
    /// library APIs can pin 1 vs N without touching process state.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Map each item.
    pub fn map<O: Send, F: Fn(Op::Out) -> O + Sync>(self, f: F) -> ParIter<I, MapOp<Op, F>> {
        ParIter {
            base: self.base,
            op: MapOp { prev: self.op, f },
            threads: self.threads,
        }
    }

    /// Keep items matching the predicate.
    pub fn filter<F: Fn(&Op::Out) -> bool + Sync>(self, f: F) -> ParIter<I, FilterOp<Op, F>> {
        ParIter {
            base: self.base,
            op: FilterOp { prev: self.op, f },
            threads: self.threads,
        }
    }

    /// Map then flatten.
    pub fn flat_map<O, F>(self, f: F) -> ParIter<I, FlatMapOp<Op, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(Op::Out) -> O + Sync,
    {
        ParIter {
            base: self.base,
            op: FlatMapOp { prev: self.op, f },
            threads: self.threads,
        }
    }

    /// Resolved worker count for this iterator.
    fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(current_num_threads).max(1)
    }

    /// Execute the pipeline, returning outputs in source order. The heart
    /// of the determinism contract: workers pull contiguous chunks from
    /// the shared source, and chunk outputs are re-assembled by sequence
    /// number, so the returned `Vec` is identical for every thread count.
    fn run(self) -> Vec<Op::Out> {
        let threads = self.resolved_threads();
        let (lo, hi) = self.base.size_hint();
        let est = hi.unwrap_or(lo);
        if threads == 1 || est == 1 {
            let mut out = Vec::with_capacity(est);
            let op = self.op;
            for item in self.base {
                op.apply(item, &mut |x| out.push(x));
            }
            return out;
        }
        let chunk = chunk_len(est.max(1), threads);
        // Never park more workers than there are chunks to hand out (when
        // the source size is known).
        let workers = if est > 0 {
            threads.min(est.div_ceil(chunk))
        } else {
            threads
        };
        let source = Mutex::new(Source {
            iter: self.base,
            next_seq: 0,
        });
        let chunks: Mutex<Vec<(usize, Vec<Op::Out>)>> = Mutex::new(Vec::new());
        let op = &self.op;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let (seq, batch) = {
                        let mut src = source.lock();
                        let batch: Vec<I::Item> = src.iter.by_ref().take(chunk).collect();
                        if batch.is_empty() {
                            break;
                        }
                        let seq = src.next_seq;
                        src.next_seq += 1;
                        (seq, batch)
                    };
                    let mut out = Vec::with_capacity(batch.len());
                    for item in batch {
                        op.apply(item, &mut |x| out.push(x));
                    }
                    chunks.lock().push((seq, out));
                });
            }
        });
        let mut parts = chunks.into_inner();
        parts.sort_by_key(|&(seq, _)| seq);
        let mut out = Vec::with_capacity(est);
        for (_, mut part) in parts {
            out.append(&mut part);
        }
        out
    }

    /// Run `f` on every item **inside the workers** — side effects are
    /// concurrent and unordered, matching upstream rayon. The only
    /// consumer outside the bit-identity contract; `collect` first if
    /// effect order matters.
    pub fn for_each<F: Fn(Op::Out) + Sync>(self, f: F) {
        let threads = self.resolved_threads();
        if threads == 1 {
            let op = self.op;
            for item in self.base {
                op.apply(item, &mut |x| f(x));
            }
            return;
        }
        let (lo, hi) = self.base.size_hint();
        let est = hi.unwrap_or(lo);
        let chunk = chunk_len(est.max(1), threads);
        let source = Mutex::new(Source {
            iter: self.base,
            next_seq: 0,
        });
        let op = &self.op;
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let batch: Vec<I::Item> = {
                        let mut src = source.lock();
                        src.iter.by_ref().take(chunk).collect()
                    };
                    if batch.is_empty() {
                        break;
                    }
                    for item in batch {
                        op.apply(item, &mut |x| f(x));
                    }
                });
            }
        });
    }

    /// Collect into any `FromIterator` container, in source order.
    pub fn collect<C: FromIterator<Op::Out>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Sum all items (sequential fold over the ordered outputs:
    /// bit-identical to `Iterator::sum`).
    pub fn sum<S: std::iter::Sum<Op::Out>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Count items.
    pub fn count(self) -> usize {
        self.run().len()
    }

    /// rayon-style reduce: fold from an identity factory. Applied
    /// sequentially over the ordered outputs, so floating-point operators
    /// associate exactly as a sequential fold would.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> Op::Out
    where
        ID: Fn() -> Op::Out,
        OP: Fn(Op::Out, Op::Out) -> Op::Out,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Minimum by comparator (first minimum in source order, like
    /// `Iterator::min_by`).
    pub fn min_by<F: FnMut(&Op::Out, &Op::Out) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<Op::Out> {
        self.run().into_iter().min_by(f)
    }

    /// Maximum by comparator.
    pub fn max_by<F: FnMut(&Op::Out, &Op::Out) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<Op::Out> {
        self.run().into_iter().max_by(f)
    }

    /// Minimum by key.
    pub fn min_by_key<K: Ord, F: FnMut(&Op::Out) -> K>(self, f: F) -> Option<Op::Out> {
        self.run().into_iter().min_by_key(f)
    }

    /// Whether any item satisfies the predicate (no short-circuit; the
    /// pipeline runs to completion, keeping the work deterministic).
    pub fn any<F: FnMut(Op::Out) -> bool>(self, f: F) -> bool {
        let mut f = f;
        self.run().into_iter().any(&mut f)
    }

    /// Whether all items satisfy the predicate.
    pub fn all<F: FnMut(Op::Out) -> bool>(self, f: F) -> bool {
        let mut f = f;
        self.run().into_iter().all(&mut f)
    }
}

/// Owning conversion into a parallel iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// rayon's `into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            base: self.into_iter(),
            op: Identity,
            threads: None,
        }
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Borrowing conversion (`par_iter`) for slice-like containers.
pub trait IntoParallelRefIterator<'data> {
    /// Item type yielded by reference.
    type Iter: Iterator;

    /// rayon's `par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter {
            base: self.iter(),
            op: Identity,
            threads: None,
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter {
            base: self.as_slice().iter(),
            op: Identity,
            threads: None,
        }
    }
}

/// The names user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn reduce_matches_fold_semantics() {
        let total = (0u64..100)
            .into_par_iter()
            .map(|i| i * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 9900);
    }

    #[test]
    fn par_iter_over_vec_and_slice() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, 30);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().count(), 4);
    }

    #[test]
    fn collect_is_ordered_for_every_thread_count() {
        let seq: Vec<u64> = (0u64..5000).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 17] {
            let par: Vec<u64> = (0u64..5000)
                .into_par_iter()
                .with_threads(threads)
                .map(|i| i * 3 + 1)
                .collect();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_to_sequential() {
        let xs: Vec<f64> = (1..4000).map(|i| 1.0 / i as f64).collect();
        let seq: f64 = xs.iter().map(|x| x.sqrt()).sum();
        for threads in [1, 2, 7, 16] {
            let par: f64 = xs
                .par_iter()
                .with_threads(threads)
                .map(|x| x.sqrt())
                .sum();
            assert_eq!(seq.to_bits(), par.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let seq: Vec<u32> = (0u32..1000)
            .filter(|i| i % 3 == 0)
            .flat_map(|i| [i, i + 1])
            .collect();
        let par: Vec<u32> = (0u32..1000)
            .into_par_iter()
            .with_threads(6)
            .filter(|i| i % 3 == 0)
            .flat_map(|i| [i, i + 1])
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let sum = AtomicU64::new(0);
        (1u64..=1000)
            .into_par_iter()
            .with_threads(5)
            .for_each(|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(sum.into_inner(), 500_500);
    }

    #[test]
    fn min_max_match_sequential() {
        let v: Vec<i64> = (0..997).map(|i| (i * 7919) % 997).collect();
        let got = v
            .par_iter()
            .with_threads(4)
            .min_by(|a, b| a.cmp(b))
            .copied();
        assert_eq!(got, v.iter().min().copied());
        let got = v
            .par_iter()
            .with_threads(4)
            .max_by(|a, b| a.cmp(b))
            .copied();
        assert_eq!(got, v.iter().max().copied());
    }

    #[test]
    fn empty_and_single_sources() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().with_threads(4).map(|&x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().with_threads(4).collect();
        assert_eq!(one, [9]);
    }

    #[test]
    fn chunk_len_bounds() {
        assert_eq!(super::chunk_len(10, 8), 16); // floor
        assert_eq!(super::chunk_len(36_380, 8), 568);
        assert_eq!(super::chunk_len(10_000_000, 4), 1024); // ceiling
    }

    #[test]
    fn thread_override_resolution() {
        // Per-iterator override beats everything and 0 clears it.
        let v: Vec<u32> = (0..100).collect();
        let a: Vec<u32> = v.par_iter().with_threads(3).map(|&x| x).collect();
        let b: Vec<u32> = v.par_iter().with_threads(3).with_threads(0).map(|&x| x).collect();
        assert_eq!(a, b);
        assert!(super::current_num_threads() >= 1);
    }
}
