//! Offline drop-in subset of `rayon`.
//!
//! Vendored because the build environment cannot reach crates.io. The
//! `par_iter`/`into_par_iter` API surface this workspace uses is provided
//! with *sequential* execution: every adaptor preserves rayon's semantics
//! (same results, same reduction identities) without threads. Swap back to
//! the real crate by deleting the `[patch.crates-io]` entry.

#![forbid(unsafe_code)]

/// Number of worker threads rayon would use (the host's available
/// parallelism; this stub still reports it so chunking heuristics keep
/// their shape).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator that
/// exposes rayon's method set (notably `reduce` with an identity factory,
/// which differs from `Iterator::reduce`).
#[derive(Debug, Clone)]
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Map then flatten.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, O, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collect into any `FromIterator` container (rayon supports `Vec`,
    /// maps, etc.; sequentially every container works).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// rayon-style reduce: fold from an identity factory. Sequential fold
    /// gives the same result for associative operators, which rayon
    /// requires anyway.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Minimum by comparator.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }

    /// Maximum by comparator.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }

    /// Minimum by key.
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    /// Whether any item satisfies the predicate.
    pub fn any<F: FnMut(I::Item) -> bool>(self, mut f: F) -> bool {
        let mut it = self.0;
        it.any(&mut f)
    }

    /// Whether all items satisfy the predicate.
    pub fn all<F: FnMut(I::Item) -> bool>(self, mut f: F) -> bool {
        let mut it = self.0;
        it.all(&mut f)
    }
}

/// Owning conversion into a parallel iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// rayon's `into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Borrowing conversion (`par_iter`) for slice-like containers.
pub trait IntoParallelRefIterator<'data> {
    /// Item type yielded by reference.
    type Iter: Iterator;

    /// rayon's `par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.as_slice().iter())
    }
}

/// The names user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn reduce_matches_fold_semantics() {
        let total = (0u64..100)
            .into_par_iter()
            .map(|i| i * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 9900);
    }

    #[test]
    fn par_iter_over_vec_and_slice() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, 30);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().count(), 4);
    }
}
