//! Offline drop-in subset of `criterion`.
//!
//! Vendored because the build environment cannot reach crates.io. Benches
//! compile against the real API surface and each benchmark closure runs
//! exactly once as a smoke test — no statistics, warm-up, or reports. Swap
//! back to the real crate by deleting the `[patch.crates-io]` entry.

#![forbid(unsafe_code)]

use std::fmt;

/// Opaque value barrier (identity here; the real crate defeats
/// const-folding, which matters only for timing accuracy).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench (smoke run): {id}");
        f(&mut Bencher { _priv: () });
        self
    }

    /// Final flush; no-op in this stub.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the statistical sample size (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench (smoke run): {}/{id}", self.name);
        f(&mut Bencher { _priv: () });
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench (smoke run): {}/{id}", self.name);
        f(&mut Bencher { _priv: () }, input);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    _priv: (),
}

impl Bencher {
    /// Run the routine (once, as a smoke test).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

/// Declared throughput for a benchmark (ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Define a benchmark group function set.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_once() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(4));
            g.bench_function("f", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| runs += x as usize)
            });
            g.finish();
        }
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("w").to_string(), "w");
    }
}
